package sched

import (
	"math"
	"testing"

	"trios/internal/circuit"
)

var unit = GateTimes{OneQubit: 1, TwoQubit: 10, Measure: 100}

func TestASAPSequentialGates(t *testing.T) {
	c := circuit.New(1)
	c.H(0).T(0).H(0)
	s, err := ASAP(c, unit)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 2}
	for i, w := range want {
		if s.Start[i] != w {
			t.Errorf("start[%d] = %v, want %v", i, s.Start[i], w)
		}
	}
	if s.TotalDuration != 3 {
		t.Errorf("duration = %v", s.TotalDuration)
	}
}

func TestASAPParallelGates(t *testing.T) {
	c := circuit.New(2)
	c.H(0).H(1)
	s, _ := ASAP(c, unit)
	if s.Start[1] != 0 {
		t.Error("independent gates should start together")
	}
	if s.TotalDuration != 1 {
		t.Errorf("duration = %v", s.TotalDuration)
	}
}

func TestASAPTwoQubitDependency(t *testing.T) {
	c := circuit.New(2)
	c.H(0).CX(0, 1).H(1)
	s, _ := ASAP(c, unit)
	if s.Start[1] != 1 {
		t.Errorf("cx start = %v, want 1", s.Start[1])
	}
	if s.Start[2] != 11 {
		t.Errorf("h(1) start = %v, want 11", s.Start[2])
	}
	if s.TotalDuration != 12 {
		t.Errorf("duration = %v", s.TotalDuration)
	}
}

func TestASAPBarrierSynchronizes(t *testing.T) {
	c := circuit.New(2)
	c.H(0).Barrier().H(1)
	s, _ := ASAP(c, unit)
	// h(1) cannot start before the barrier, which waits for h(0).
	if s.Start[2] != 1 {
		t.Errorf("post-barrier start = %v, want 1", s.Start[2])
	}
}

func TestSwapAndToffoliDurations(t *testing.T) {
	c := circuit.New(3)
	c.SWAP(0, 1)
	d, err := Duration(c, unit)
	if err != nil {
		t.Fatal(err)
	}
	if d != 30 {
		t.Errorf("swap duration = %v, want 30", d)
	}
	c2 := circuit.New(3)
	c2.CCX(0, 1, 2)
	d2, _ := Duration(c2, unit)
	if d2 != 84 { // 8*10 + 4*1
		t.Errorf("ccx duration = %v, want 84", d2)
	}
}

func TestMeasureDuration(t *testing.T) {
	c := circuit.New(1)
	c.H(0).Measure(0)
	d, _ := Duration(c, unit)
	if d != 101 {
		t.Errorf("duration = %v, want 101", d)
	}
}

func TestMCXRejected(t *testing.T) {
	c := circuit.New(4)
	c.MCX([]int{0, 1, 2}, 3)
	if _, err := ASAP(c, unit); err == nil {
		t.Error("expected error for mcx")
	}
}

func TestCriticalPathGates(t *testing.T) {
	c := circuit.New(3)
	c.H(0).CX(0, 1).CX(1, 2) // chain of 3
	c.H(2)                   // extends chain to 4 on qubit 2
	s, _ := ASAP(c, unit)
	if s.CriticalPathGates != 4 {
		t.Errorf("critical path = %d, want 4", s.CriticalPathGates)
	}
}

func TestJohannesburgTimes(t *testing.T) {
	gt := JohannesburgTimes()
	if math.Abs(gt.TwoQubit-0.559) > 1e-12 || math.Abs(gt.OneQubit-0.07) > 1e-12 {
		t.Errorf("johannesburg times wrong: %+v", gt)
	}
}

func TestDurationMatchesDepthTimesGateTimeOnSerialCircuit(t *testing.T) {
	c := circuit.New(2)
	for i := 0; i < 7; i++ {
		c.CX(0, 1)
	}
	d, _ := Duration(c, unit)
	if d != 70 {
		t.Errorf("duration = %v, want 70", d)
	}
}
