package sched

import (
	"testing"

	"trios/internal/circuit"
	"trios/internal/topo"
)

func TestCrosstalkSerializesAdjacentCNOTs(t *testing.T) {
	// Line 0-1-2-3: cx(0,1) and cx(2,3) act on adjacent couplings (qubits
	// 1 and 2 are coupled), so they must not overlap.
	g := topo.Line(4)
	c := circuit.New(4)
	c.CX(0, 1).CX(2, 3)
	plain, err := ASAP(c, unit)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := CrosstalkASAP(c, unit, g)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalDuration != 10 {
		t.Errorf("plain makespan = %v, want 10 (parallel)", plain.TotalDuration)
	}
	if serial.TotalDuration != 20 {
		t.Errorf("serialized makespan = %v, want 20", serial.TotalDuration)
	}
}

func TestCrosstalkAllowsDistantCNOTs(t *testing.T) {
	// Line of 6: cx(0,1) and cx(4,5) share no coupling; they may overlap.
	g := topo.Line(6)
	c := circuit.New(6)
	c.CX(0, 1).CX(4, 5)
	serial, err := CrosstalkASAP(c, unit, g)
	if err != nil {
		t.Fatal(err)
	}
	if serial.TotalDuration != 10 {
		t.Errorf("distant CNOTs serialized: makespan %v, want 10", serial.TotalDuration)
	}
}

func TestCrosstalkOneQubitGatesUnaffected(t *testing.T) {
	g := topo.Line(3)
	c := circuit.New(3)
	c.H(0).H(1).H(2)
	serial, err := CrosstalkASAP(c, unit, g)
	if err != nil {
		t.Fatal(err)
	}
	if serial.TotalDuration != 1 {
		t.Errorf("1q layer makespan = %v, want 1", serial.TotalDuration)
	}
}

func TestCrosstalkRejectsNonCoupledCX(t *testing.T) {
	g := topo.Line(4)
	c := circuit.New(4)
	c.CX(0, 3)
	if _, err := CrosstalkASAP(c, unit, g); err == nil {
		t.Error("expected error for off-coupling cx")
	}
}

func TestCrosstalkScheduleValid(t *testing.T) {
	g := topo.Grid5x4()
	c := circuit.New(20)
	for _, e := range g.Edges() {
		c.CX(e[0], e[1])
	}
	serial, err := CrosstalkASAP(c, unit, g)
	if err != nil {
		t.Fatal(err)
	}
	checkScheduleValid(t, c, serial, unit)
	// No two adjacent-coupling CNOTs overlap.
	for i := 0; i < len(c.Gates); i++ {
		for j := i + 1; j < len(c.Gates); j++ {
			gi, gj := c.Gates[i], c.Gates[j]
			if !gi.IsTwoQubit() || !gj.IsTwoQubit() {
				continue
			}
			adjacent := false
			for _, x := range gi.Qubits {
				for _, y := range gj.Qubits {
					if x == y || g.Connected(x, y) {
						adjacent = true
					}
				}
			}
			if !adjacent {
				continue
			}
			si, sj := serial.Start[i], serial.Start[j]
			if si < sj+10 && sj < si+10 {
				t.Fatalf("gates %d and %d overlap on adjacent couplings (%v, %v)", i, j, si, sj)
			}
		}
	}
}

func TestSerializationOverhead(t *testing.T) {
	g := topo.Line(4)
	c := circuit.New(4)
	c.CX(0, 1).CX(2, 3)
	ratio, err := SerializationOverhead(c, unit, g)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 2 {
		t.Errorf("overhead = %v, want 2", ratio)
	}
	// Circuit with no parallel adjacent pairs has overhead 1.
	c2 := circuit.New(4)
	c2.CX(0, 1).CX(0, 1)
	r2, _ := SerializationOverhead(c2, unit, g)
	if r2 != 1 {
		t.Errorf("overhead = %v, want 1", r2)
	}
}

func TestCrosstalkEmptyCircuit(t *testing.T) {
	g := topo.Line(2)
	ratio, err := SerializationOverhead(circuit.New(2), unit, g)
	if err != nil || ratio != 1 {
		t.Errorf("empty overhead = %v, %v", ratio, err)
	}
}
