// Package sched computes ASAP (as-soon-as-possible) schedules for compiled
// circuits: per-gate start times and the total program duration, which feeds
// the decoherence term of the paper's success-probability model (§2.6).
package sched

import (
	"fmt"

	"trios/internal/circuit"
)

// GateTimes gives operation durations in microseconds.
type GateTimes struct {
	OneQubit float64
	TwoQubit float64
	Measure  float64
}

// JohannesburgTimes are the calibration values the paper reports for IBM
// Johannesburg on 8/19/2020: two-qubit gates 0.559 us, one-qubit 0.07 us.
// The measure time is a representative readout duration for that device
// generation.
func JohannesburgTimes() GateTimes {
	return GateTimes{OneQubit: 0.07, TwoQubit: 0.559, Measure: 3.5}
}

// Duration returns the duration of one gate. SWAPs count as 3 two-qubit
// gates and Toffolis as their 8-CNOT expansion plus single-qubit dressing,
// so schedules of partially-lowered circuits remain meaningful; fully
// compiled circuits only contain 1q/2q/measure operations.
func (t GateTimes) Duration(g circuit.Gate) (float64, error) {
	switch g.Name {
	case circuit.Barrier:
		return 0, nil
	case circuit.Measure:
		return t.Measure, nil
	case circuit.SWAP:
		return 3 * t.TwoQubit, nil
	case circuit.CCX, circuit.CCZ:
		return 8*t.TwoQubit + 4*t.OneQubit, nil
	case circuit.RCCX, circuit.RCCXdg:
		return 3*t.TwoQubit + 4*t.OneQubit, nil
	case circuit.MCX:
		return 0, fmt.Errorf("sched: cannot time an undecomposed mcx")
	default:
		if g.IsTwoQubit() {
			return t.TwoQubit, nil
		}
		return t.OneQubit, nil
	}
}

// Schedule is an ASAP timing of a circuit.
type Schedule struct {
	// Start[i] is the start time (us) of gate i; barriers get their sync time.
	Start []float64
	// TotalDuration is the makespan in microseconds.
	TotalDuration float64
	// CriticalPathGates is the number of gates on one longest dependency
	// chain (by duration).
	CriticalPathGates int
}

// ASAP schedules every gate at the earliest time all its qubits are free.
// Barriers synchronize their qubits at zero duration.
func ASAP(c *circuit.Circuit, times GateTimes) (*Schedule, error) {
	avail := make([]float64, c.NumQubits)
	chain := make([]int, c.NumQubits) // gates on the critical chain per qubit
	s := &Schedule{Start: make([]float64, len(c.Gates))}
	maxChain := 0
	for i, g := range c.Gates {
		start := 0.0
		depth := 0
		for _, q := range g.Qubits {
			if avail[q] > start {
				start = avail[q]
			}
			if chain[q] > depth {
				depth = chain[q]
			}
		}
		d, err := times.Duration(g)
		if err != nil {
			return nil, fmt.Errorf("gate %d: %w", i, err)
		}
		s.Start[i] = start
		end := start + d
		if g.Name != circuit.Barrier {
			depth++
		}
		for _, q := range g.Qubits {
			avail[q] = end
			chain[q] = depth
		}
		if end > s.TotalDuration {
			s.TotalDuration = end
		}
		if depth > maxChain {
			maxChain = depth
		}
	}
	s.CriticalPathGates = maxChain
	return s, nil
}

// Duration is a convenience wrapper returning only the makespan.
func Duration(c *circuit.Circuit, times GateTimes) (float64, error) {
	s, err := ASAP(c, times)
	if err != nil {
		return 0, err
	}
	return s.TotalDuration, nil
}

// ALAP schedules every gate at the latest time that keeps the ASAP
// makespan: gates are placed right-to-left against each qubit's deadline.
// Delaying gates as late as possible shortens the time early-prepared
// qubits sit idle and decohering, which is why compilers often prefer ALAP
// for the final schedule.
func ALAP(c *circuit.Circuit, times GateTimes) (*Schedule, error) {
	asap, err := ASAP(c, times)
	if err != nil {
		return nil, err
	}
	makespan := asap.TotalDuration
	deadline := make([]float64, c.NumQubits)
	for i := range deadline {
		deadline[i] = makespan
	}
	s := &Schedule{
		Start:             make([]float64, len(c.Gates)),
		TotalDuration:     makespan,
		CriticalPathGates: asap.CriticalPathGates,
	}
	for i := len(c.Gates) - 1; i >= 0; i-- {
		g := c.Gates[i]
		end := makespan
		for _, q := range g.Qubits {
			if deadline[q] < end {
				end = deadline[q]
			}
		}
		d, err := times.Duration(g)
		if err != nil {
			return nil, fmt.Errorf("gate %d: %w", i, err)
		}
		start := end - d
		s.Start[i] = start
		for _, q := range g.Qubits {
			deadline[q] = start
		}
	}
	return s, nil
}

// IdleTime returns the summed per-qubit idle time of a schedule: for each
// active qubit, the span between its first gate's start and last gate's end
// minus the time it spends inside gates. Lower is better for decoherence;
// ALAP schedules never have more idle-before-first-use than ASAP.
func IdleTime(c *circuit.Circuit, s *Schedule, times GateTimes) (float64, error) {
	first := make([]float64, c.NumQubits)
	last := make([]float64, c.NumQubits)
	busy := make([]float64, c.NumQubits)
	active := make([]bool, c.NumQubits)
	for i := range first {
		first[i] = -1
	}
	for i, g := range c.Gates {
		if g.Name == circuit.Barrier {
			continue
		}
		d, err := times.Duration(g)
		if err != nil {
			return 0, err
		}
		for _, q := range g.Qubits {
			if first[q] < 0 {
				first[q] = s.Start[i]
			}
			if end := s.Start[i] + d; end > last[q] {
				last[q] = end
			}
			busy[q] += d
			active[q] = true
		}
	}
	total := 0.0
	for q := 0; q < c.NumQubits; q++ {
		if active[q] {
			total += (last[q] - first[q]) - busy[q]
		}
	}
	return total, nil
}
