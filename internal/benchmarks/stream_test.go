package benchmarks

import (
	"bytes"
	"io"
	"testing"

	"trios/internal/qasm"
)

func countStreamGates(t *testing.T, r io.Reader) (gates, qubits int) {
	t.Helper()
	sr := qasm.NewReader(r)
	for {
		_, err := sr.NextGate()
		if err == io.EOF {
			return gates, sr.NumQubits()
		}
		if err != nil {
			t.Fatalf("gate %d: %v", gates, err)
		}
		gates++
	}
}

func TestStreamGeneratorsExactCountAndParse(t *testing.T) {
	cases := []struct {
		name string
		mk   func(n, gates int, seed int64) io.Reader
	}{
		{"qaoa", StreamQAOA},
		{"cliffordt", StreamCliffordT},
	}
	for _, tc := range cases {
		for _, want := range []int{1, 100, 5000} {
			gates, qubits := countStreamGates(t, tc.mk(12, want, 1))
			if gates != want {
				t.Fatalf("%s: %d gates, want exactly %d", tc.name, gates, want)
			}
			if qubits != 12 {
				t.Fatalf("%s: register %d, want 12", tc.name, qubits)
			}
		}
	}
}

func TestStreamGeneratorsDeterministic(t *testing.T) {
	a, err := io.ReadAll(StreamQAOA(10, 2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(StreamQAOA(10, 2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("StreamQAOA is not deterministic for a fixed seed")
	}
	c, err := io.ReadAll(StreamQAOA(10, 2000, 8))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("StreamQAOA ignores the seed")
	}
	d, err := io.ReadAll(StreamCliffordT(10, 2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	e, err := io.ReadAll(StreamCliffordT(10, 2000, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d, e) {
		t.Fatal("StreamCliffordT is not deterministic for a fixed seed")
	}
}
