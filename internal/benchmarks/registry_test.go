package benchmarks

import "testing"

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("registry has %d benchmarks, want 11", len(all))
	}
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("grovers-9")
	if err != nil || b.PaperToffolis != 84 {
		t.Errorf("ByName grovers-9: %+v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

// TestMeasureAgainstTable1 documents how closely each generator reproduces
// the paper's published sizes. Qubit counts must match exactly. Toffoli and
// CNOT counts must match exactly for the constructions specified precisely
// by their source papers; the two Gidney-blog constructions
// (incrementer_borrowedbit, cnx_inplace) are reimplementations from the
// construction idea and land at different absolute sizes — EXPERIMENTS.md
// records both.
func TestMeasureAgainstTable1(t *testing.T) {
	exactToffoli := map[string]bool{
		"cnx_dirty-11":        true,
		"cnx_halfborrowed-19": true,
		"cnx_logancilla-19":   true,
		"cuccaro_adder-20":    true,
		"takahashi_adder-20":  true,
		"grovers-9":           true,
		"qft_adder-16":        true,
		"bv-20":               true,
		"qaoa_complete-10":    true,
	}
	exactCNOT := map[string]bool{
		"cnx_dirty-11":        true, // 16 x 8 = 128
		"cnx_halfborrowed-19": true, // 32 x 8 = 256
		"cnx_logancilla-19":   true, // 17 x 8 = 136
		"grovers-9":           true, // 84 x 8 = 672
		"qft_adder-16":        true, // 92 controlled phases
		"bv-20":               true,
		"qaoa_complete-10":    true,
	}
	for _, b := range All() {
		m, err := b.Measure()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if m.Qubits != b.PaperQubits {
			t.Errorf("%s: qubits = %d, paper says %d", b.Name, m.Qubits, b.PaperQubits)
		}
		if exactToffoli[b.Name] && m.Toffolis != b.PaperToffolis {
			t.Errorf("%s: toffolis = %d, paper says %d", b.Name, m.Toffolis, b.PaperToffolis)
		}
		if exactCNOT[b.Name] && m.CNOTs != b.PaperCNOTs {
			t.Errorf("%s: CNOTs = %d, paper says %d", b.Name, m.CNOTs, b.PaperCNOTs)
		}
		if b.HasToffolis != (m.Toffolis > 0) {
			t.Errorf("%s: HasToffolis=%v but measured %d toffolis", b.Name, b.HasToffolis, m.Toffolis)
		}
	}
}

// TestMeasureAdderCNOTsNearPaper keeps the ripple adders within a small
// tolerance of the published totals (the papers leave a couple of peephole
// choices open, e.g. 2- vs 3-CNOT UMA blocks).
func TestMeasureAdderCNOTsNearPaper(t *testing.T) {
	for _, name := range []string{"cuccaro_adder-20", "takahashi_adder-20"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := b.Measure()
		if err != nil {
			t.Fatal(err)
		}
		diff := m.CNOTs - b.PaperCNOTs
		if diff < 0 {
			diff = -diff
		}
		if diff > 15 {
			t.Errorf("%s: CNOTs = %d, paper says %d (diff %d > 15)", name, m.CNOTs, b.PaperCNOTs, diff)
		}
	}
}

func TestAllBenchmarksBuildAndValidate(t *testing.T) {
	for _, b := range All() {
		c, err := b.Build()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
}
