// Package benchmarks generates the NISQ benchmark and quantum-subroutine
// circuits of the paper's Table 1: four CnX (many-controlled-NOT)
// constructions with different ancilla budgets, three adders, an
// incrementer, Grover search, Bernstein-Vazirani, and QAOA Max-Cut.
//
// Each generator is verified in tests against its functional specification
// (truth tables for reversible circuits, statevector checks otherwise), and
// the registry records the paper's published gate counts next to ours.
package benchmarks

import (
	"fmt"
	"math"

	"trios/internal/circuit"
	"trios/internal/decompose"
)

// CnXDirty returns the Barenco V-chain CnX with nControls controls,
// nControls-2 dirty ancillas, and one target: 4(n-2) Toffolis.
// Wire order: controls, ancillas, target.
// The paper's cnx_dirty-11 is CnXDirty(6): 11 qubits, 16 Toffolis.
func CnXDirty(nControls int) (*circuit.Circuit, error) {
	if nControls < 3 {
		return nil, fmt.Errorf("benchmarks: cnx_dirty needs >= 3 controls, got %d", nControls)
	}
	n := 2*nControls - 1
	c := circuit.New(n)
	controls := seq(0, nControls)
	dirty := seq(nControls, nControls-2)
	target := n - 1
	if err := decompose.MCXDirty(c, controls, target, dirty); err != nil {
		return nil, err
	}
	return c, nil
}

// CnXHalfBorrowed returns the same V-chain at the size where roughly half
// the register is borrowed bits. The paper's cnx_halfborrowed-19 is
// CnXHalfBorrowed(10): 10 controls + 8 borrowed + target = 19 qubits,
// 32 Toffolis.
func CnXHalfBorrowed(nControls int) (*circuit.Circuit, error) {
	return CnXDirty(nControls)
}

// CnXLogAncilla returns the clean-ancilla AND-ladder CnX: nControls
// controls, nControls-2 clean |0> ancillas, one target, 2n-3 Toffolis.
// The paper's cnx_logancilla-19 is CnXLogAncilla(10): 19 qubits, 17 Toffolis.
func CnXLogAncilla(nControls int) (*circuit.Circuit, error) {
	if nControls < 3 {
		return nil, fmt.Errorf("benchmarks: cnx_logancilla needs >= 3 controls, got %d", nControls)
	}
	n := 2*nControls - 1
	c := circuit.New(n)
	controls := seq(0, nControls)
	clean := seq(nControls, nControls-2)
	target := n - 1
	if err := decompose.MCXClean(c, controls, target, clean); err != nil {
		return nil, err
	}
	return c, nil
}

// CnXLogAncillaRP is CnXLogAncilla with relative-phase (Margolus) Toffolis
// on the compute/uncompute ladder — an architecture-tuned refinement in the
// spirit of the paper's §6.3: the router places each Margolus trio with its
// target in the middle and the second pass emits 3 CNOTs instead of 8.
func CnXLogAncillaRP(nControls int) (*circuit.Circuit, error) {
	if nControls < 3 {
		return nil, fmt.Errorf("benchmarks: cnx_logancilla needs >= 3 controls, got %d", nControls)
	}
	n := 2*nControls - 1
	c := circuit.New(n)
	if err := decompose.MCXCleanRP(c, seq(0, nControls), n-1, seq(nControls, nControls-2)); err != nil {
		return nil, err
	}
	return c, nil
}

// CnXInplace returns an ancilla-free CnX on nControls+1 wires using the
// Barenco controlled-root recursion: C^nX = CV(c_n, t) C^{n-1}X(c_n)
// CV†(c_n, t) C^{n-1}X(c_n) C^{n-1}(V)(t), with the inner multi-controlled
// X gates borrowing the target wire. Controlled roots X^(1/2^k) are built as
// H-conjugated controlled phases.
//
// The paper's cnx_inplace-4 is CnXInplace(3). The authors generate it from
// Gidney's incrementer-based in-place construction (54 Toffolis); this
// controlled-root construction computes the same gate with a different
// (smaller) circuit — see EXPERIMENTS.md for the count comparison.
func CnXInplace(nControls int) (*circuit.Circuit, error) {
	if nControls < 1 {
		return nil, fmt.Errorf("benchmarks: cnx_inplace needs >= 1 control")
	}
	c := circuit.New(nControls + 1)
	if err := InplaceMCX(c, seq(0, nControls), nControls); err != nil {
		return nil, err
	}
	return c, nil
}

// InplaceMCX appends an ancilla-free multi-controlled X built from Toffolis,
// CNOTs, and controlled X-roots, usable when no borrowable wire exists.
func InplaceMCX(out *circuit.Circuit, controls []int, target int) error {
	n := len(controls)
	if n <= 2 {
		return decompose.MCXDirty(out, controls, target, nil)
	}
	last := controls[n-1]
	rest := controls[:n-1]
	cxRoot(out, last, target, 0.5)
	if err := decompose.MCXBorrowed(out, rest, last, []int{target}); err != nil {
		return err
	}
	cxRoot(out, last, target, -0.5)
	if err := decompose.MCXBorrowed(out, rest, last, []int{target}); err != nil {
		return err
	}
	return cnRoot(out, rest, target, 0.5)
}

// cnRoot appends a multi-controlled X^alpha via the standard square-root
// recursion.
func cnRoot(out *circuit.Circuit, controls []int, target int, alpha float64) error {
	if len(controls) == 1 {
		cxRoot(out, controls[0], target, alpha)
		return nil
	}
	n := len(controls)
	last := controls[n-1]
	rest := controls[:n-1]
	cxRoot(out, last, target, alpha/2)
	if err := decompose.MCXBorrowed(out, rest, last, []int{target}); err != nil {
		return err
	}
	cxRoot(out, last, target, -alpha/2)
	if err := decompose.MCXBorrowed(out, rest, last, []int{target}); err != nil {
		return err
	}
	return cnRoot(out, rest, target, alpha/2)
}

// cxRoot appends a controlled X^alpha: X^alpha = H Z^alpha H and controlled
// Z^alpha is a controlled phase of pi*alpha.
func cxRoot(out *circuit.Circuit, ctl, tgt int, alpha float64) {
	out.H(tgt)
	out.CP(math.Pi*alpha, ctl, tgt)
	out.H(tgt)
}

// seq returns [start, start+1, ..., start+count-1].
func seq(start, count int) []int {
	s := make([]int, count)
	for i := range s {
		s[i] = start + i
	}
	return s
}
