package benchmarks

import (
	"testing"

	"trios/internal/circuit"
	"trios/internal/sim"
)

func TestGroverFindsMarkedState(t *testing.T) {
	// Small instances simulate fast; the amplitude of the all-ones data
	// state must dominate after the iterations.
	for _, nData := range []int{3, 4, 5} {
		c, err := Grover(nData)
		if err != nil {
			t.Fatal(err)
		}
		s := sim.NewState(c.NumQubits)
		if err := s.ApplyCircuit(c); err != nil {
			t.Fatal(err)
		}
		marked := uint64(1)<<uint(nData) - 1 // data all ones, ancilla zero
		p := s.Probability(marked)
		if p < 0.8 {
			t.Errorf("grover(%d): marked-state probability %.3f < 0.8", nData, p)
		}
	}
}

func TestGroverPaperSize(t *testing.T) {
	c, err := Grover(6)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 9 {
		t.Errorf("qubits = %d, want 9", c.NumQubits)
	}
	if got := c.CountName(circuit.CCX); got != 84 {
		t.Errorf("toffolis = %d, want 84", got)
	}
	if GroverIterations(6) != 6 {
		t.Errorf("iterations = %d, want 6", GroverIterations(6))
	}
}

func TestGroverPaperSizeSuccess(t *testing.T) {
	c, err := Grover(6)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewState(9)
	if err := s.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	if p := s.Probability(63); p < 0.9 {
		t.Errorf("grover(6) marked probability %.3f < 0.9", p)
	}
}

func TestBVRecoversAllOnesSecret(t *testing.T) {
	for _, n := range []int{3, 7} {
		c, err := BernsteinVazirani(n)
		if err != nil {
			t.Fatal(err)
		}
		s := sim.NewState(c.NumQubits)
		if err := s.ApplyCircuit(c); err != nil {
			t.Fatal(err)
		}
		// Data qubits must read the secret (all ones); ancilla is in |->
		// so the total state is secret x (|0>-|1>)/sqrt2.
		secret := uint64(1)<<uint(n) - 1
		p := s.Probability(secret) + s.Probability(secret|1<<uint(n))
		if p < 1-1e-9 {
			t.Errorf("bv(%d): secret probability %.6f", n, p)
		}
	}
}

func TestBVPaperSize(t *testing.T) {
	c, err := BernsteinVazirani(19)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 20 {
		t.Errorf("qubits = %d, want 20", c.NumQubits)
	}
	if got := c.CountName(circuit.CX); got != 19 {
		t.Errorf("CNOTs = %d, want 19", got)
	}
	if got := c.CountName(circuit.CCX); got != 0 {
		t.Errorf("toffolis = %d, want 0", got)
	}
}

func TestQAOAPaperSize(t *testing.T) {
	c, err := QAOAComplete(10)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 10 {
		t.Errorf("qubits = %d, want 10", c.NumQubits)
	}
	if got := c.CountName(circuit.CX); got != 90 {
		t.Errorf("CNOTs = %d, want 90 (2 per K10 edge)", got)
	}
	if got := c.CountName(circuit.CCX); got != 0 {
		t.Errorf("toffolis = %d, want 0", got)
	}
}

func TestQAOAStructure(t *testing.T) {
	c, err := QAOAComplete(4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 H + 6 edges x (2 CX + 1 RZ) + 4 RX = 26 gates.
	if len(c.Gates) != 26 {
		t.Errorf("gates = %d, want 26", len(c.Gates))
	}
	if got := c.CountName(circuit.RX); got != 4 {
		t.Errorf("mixer gates = %d, want 4", got)
	}
}

func TestNISQValidation(t *testing.T) {
	if _, err := Grover(2); err == nil {
		t.Error("expected error for grover(2)")
	}
	if _, err := BernsteinVazirani(0); err == nil {
		t.Error("expected error for bv(0)")
	}
	if _, err := QAOAComplete(1); err == nil {
		t.Error("expected error for qaoa(1)")
	}
}
