package benchmarks

import (
	"fmt"
	"math"

	"trios/internal/circuit"
	"trios/internal/decompose"
)

// CuccaroAdder returns the CDKM ripple-carry adder computing b <- a + b with
// carry-in and carry-out, built from MAJ/UMA blocks (Cuccaro et al. 2004).
// Wire order: cin, a[0..n-1], b[0..n-1], cout; 2n+2 qubits and 2n Toffolis.
// The paper's cuccaro_adder-20 is CuccaroAdder(9).
func CuccaroAdder(n int) (*circuit.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("benchmarks: adder width must be >= 1, got %d", n)
	}
	c := circuit.New(2*n + 2)
	cin := 0
	a := func(i int) int { return 1 + i }
	b := func(i int) int { return 1 + n + i }
	cout := 2*n + 1

	maj := func(x, y, z int) { // MAJ(c, b, a)
		c.CX(z, y)
		c.CX(z, x)
		c.CCX(x, y, z)
	}
	uma := func(x, y, z int) { // UMA, 2-CNOT variant
		c.CCX(x, y, z)
		c.CX(z, x)
		c.CX(x, y)
	}

	maj(cin, b(0), a(0))
	for i := 1; i < n; i++ {
		maj(a(i-1), b(i), a(i))
	}
	c.CX(a(n-1), cout)
	for i := n - 1; i >= 1; i-- {
		uma(a(i-1), b(i), a(i))
	}
	uma(cin, b(0), a(0))
	return c, nil
}

// TakahashiAdder returns the Takahashi-Tani-Kunihiro ripple adder computing
// b <- a + b (mod 2^n) with no ancilla (Takahashi et al. 2009).
// Wire order: a[0..n-1], b[0..n-1]; 2n qubits and 2(n-1) Toffolis.
// The paper's takahashi_adder-20 is TakahashiAdder(10).
func TakahashiAdder(n int) (*circuit.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("benchmarks: adder width must be >= 1, got %d", n)
	}
	c := circuit.New(2 * n)
	a := func(i int) int { return i }
	b := func(i int) int { return n + i }
	if n == 1 {
		c.CX(a(0), b(0))
		return c, nil
	}

	// Step 1: copy phase.
	for i := 1; i < n; i++ {
		c.CX(a(i), b(i))
	}
	// Step 2: prepare the carry chain on the a register.
	for i := n - 2; i >= 1; i-- {
		c.CX(a(i), a(i+1))
	}
	// Step 3: compute carries into a.
	for i := 0; i < n-1; i++ {
		c.CCX(a(i), b(i), a(i+1))
	}
	// Step 4: add carries into b while uncomputing them from a.
	for i := n - 1; i >= 1; i-- {
		c.CX(a(i), b(i))
		c.CCX(a(i-1), b(i-1), a(i))
	}
	// Step 5: undo the carry-chain preparation.
	for i := 1; i < n-1; i++ {
		c.CX(a(i), a(i+1))
	}
	// Step 6: re-add a into the sum bits (step 4 cancelled it while adding
	// carries), then the low-order sum bit.
	for i := 1; i < n; i++ {
		c.CX(a(i), b(i))
	}
	c.CX(a(0), b(0))
	return c, nil
}

// IncrementerBorrowedBit returns an n-bit incrementer (register <- register
// + 1 mod 2^n) that uses one borrowed bit in an arbitrary state, restored at
// the end (after Gidney's borrowed-bit incrementer constructions).
// Wire order: r[0..n-1] (little-endian), borrowed; n+1 qubits.
// The paper's incrementer_borrowedbit-5 is IncrementerBorrowedBit(4).
//
// Each carry bit r[j] flips when all lower bits are 1, computed high-to-low
// with multi-controlled X gates that borrow the spare bit (and already-
// processed higher bits) through the Barenco V-chain.
func IncrementerBorrowedBit(n int) (*circuit.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("benchmarks: incrementer width must be >= 1, got %d", n)
	}
	c := circuit.New(n + 1)
	borrowed := n
	for j := n - 1; j >= 1; j-- {
		avail := append([]int{borrowed}, seq(j+1, n-1-j)...)
		if err := decompose.MCXBorrowed(c, seq(0, j), j, avail); err != nil {
			return nil, err
		}
	}
	c.X(0)
	return c, nil
}

// QFTAdder returns the Draper adder computing b <- a + b (mod 2^n) in the
// Fourier basis (Ruiz-Perez & Garcia-Escartin 2017): QFT on b, controlled
// phases from a, inverse QFT. It contains no Toffoli gates — the paper's
// control benchmark qft_adder-16 is QFTAdder(8).
// Wire order: a[0..n-1], b[0..n-1]. The QFT's final bit-reversal SWAPs are
// elided by reindexing, as is standard.
func QFTAdder(n int) (*circuit.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("benchmarks: adder width must be >= 1, got %d", n)
	}
	c := circuit.New(2 * n)
	a := func(i int) int { return i }
	b := func(i int) int { return n + i }

	// QFT on b without terminal swaps: qubit b(i) ends holding the phase
	// wheel for weight-i bits in reversed order; the addition rotations
	// below use the same convention so no reordering is needed.
	for i := n - 1; i >= 0; i-- {
		c.H(b(i))
		for j := i - 1; j >= 0; j-- {
			c.CP(math.Pi/math.Pow(2, float64(i-j)), b(j), b(i))
		}
	}
	// Controlled additions: a(j) adds 2^j, rotating each phase wheel b(i)
	// with i >= j by pi / 2^(i-j).
	for i := n - 1; i >= 0; i-- {
		for j := i; j >= 0; j-- {
			c.CP(math.Pi/math.Pow(2, float64(i-j)), a(j), b(i))
		}
	}
	// Inverse QFT on b.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			c.CP(-math.Pi/math.Pow(2, float64(i-j)), b(j), b(i))
		}
		c.H(b(i))
	}
	return c, nil
}
