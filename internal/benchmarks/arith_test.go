package benchmarks

import (
	"math/rand"
	"testing"

	"trios/internal/circuit"
	"trios/internal/sim"
)

func TestCuccaroAdderTruthTable(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		c, err := CuccaroAdder(n)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(n) - 1
		for a := uint64(0); a <= mask; a++ {
			for b := uint64(0); b <= mask; b++ {
				for cin := uint64(0); cin <= 1; cin++ {
					in := cin | a<<1 | b<<uint(1+n)
					out, err := sim.ClassicalRun(c, in)
					if err != nil {
						t.Fatal(err)
					}
					sum := a + b + cin
					wantB := sum & mask
					wantCout := sum >> uint(n)
					gotCin := out & 1
					gotA := (out >> 1) & mask
					gotB := (out >> uint(1+n)) & mask
					gotCout := out >> uint(2*n+1)
					if gotB != wantB || gotCout != wantCout || gotA != a || gotCin != cin {
						t.Fatalf("n=%d a=%d b=%d cin=%d: b=%d cout=%d (want %d,%d), a=%d cin=%d",
							n, a, b, cin, gotB, gotCout, wantB, wantCout, gotA, gotCin)
					}
				}
			}
		}
	}
}

func TestCuccaroAdderPaperSize(t *testing.T) {
	c, err := CuccaroAdder(9)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 20 {
		t.Errorf("qubits = %d, want 20", c.NumQubits)
	}
	if got := c.CountName(circuit.CCX); got != 18 {
		t.Errorf("toffolis = %d, want 18", got)
	}
}

func TestTakahashiAdderTruthTable(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5} {
		c, err := TakahashiAdder(n)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(n) - 1
		for a := uint64(0); a <= mask; a++ {
			for b := uint64(0); b <= mask; b++ {
				in := a | b<<uint(n)
				out, err := sim.ClassicalRun(c, in)
				if err != nil {
					t.Fatal(err)
				}
				gotA := out & mask
				gotB := out >> uint(n)
				if gotB != (a+b)&mask || gotA != a {
					t.Fatalf("n=%d a=%d b=%d: got a=%d b=%d, want a=%d b=%d",
						n, a, b, gotA, gotB, a, (a+b)&mask)
				}
			}
		}
	}
}

func TestTakahashiAdderPaperSize(t *testing.T) {
	c, err := TakahashiAdder(10)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 20 {
		t.Errorf("qubits = %d, want 20", c.NumQubits)
	}
	if got := c.CountName(circuit.CCX); got != 18 {
		t.Errorf("toffolis = %d, want 18", got)
	}
}

func TestIncrementerTruthTable(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5} {
		c, err := IncrementerBorrowedBit(n)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(n) - 1
		for r := uint64(0); r <= mask; r++ {
			for g := uint64(0); g <= 1; g++ {
				in := r | g<<uint(n)
				out, err := sim.ClassicalRun(c, in)
				if err != nil {
					t.Fatal(err)
				}
				wantR := (r + 1) & mask
				gotR := out & mask
				gotG := out >> uint(n)
				if gotR != wantR || gotG != g {
					t.Fatalf("n=%d r=%d g=%d: got r=%d g=%d, want r=%d g=%d",
						n, r, g, gotR, gotG, wantR, g)
				}
			}
		}
	}
}

func TestIncrementerPaperSize(t *testing.T) {
	c, err := IncrementerBorrowedBit(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 5 {
		t.Errorf("qubits = %d, want 5", c.NumQubits)
	}
}

func TestQFTAdderAddsCorrectly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		c, err := QFTAdder(n)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(n) - 1
		for a := uint64(0); a <= mask; a++ {
			for b := uint64(0); b <= mask; b++ {
				in := a | b<<uint(n)
				out, err := sim.ClassicalOutput(c, in)
				if err != nil {
					t.Fatalf("n=%d a=%d b=%d: %v", n, a, b, err)
				}
				gotA := out & mask
				gotB := out >> uint(n)
				if gotB != (a+b)&mask || gotA != a {
					t.Fatalf("n=%d a=%d b=%d: got a=%d b=%d, want b=%d",
						n, a, b, gotA, gotB, (a+b)&mask)
				}
			}
		}
	}
}

func TestQFTAdderHasNoToffolis(t *testing.T) {
	c, err := QFTAdder(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 16 {
		t.Errorf("qubits = %d, want 16", c.NumQubits)
	}
	if got := c.CountName(circuit.CCX); got != 0 {
		t.Errorf("toffolis = %d, want 0", got)
	}
	// Table 1 counts 92 two-qubit gates (28 + 36 + 28 controlled phases).
	if got := c.CollectStats().TwoQubit; got != 92 {
		t.Errorf("two-qubit gates = %d, want 92", got)
	}
}

func TestAddersRandomWideInputs(t *testing.T) {
	// Spot-check the paper-size adders on random inputs.
	rng := rand.New(rand.NewSource(66))
	cu, err := CuccaroAdder(9)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := TakahashiAdder(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a := uint64(rng.Intn(512))
		b := uint64(rng.Intn(512))
		in := a<<1 | b<<10
		out, err := sim.ClassicalRun(cu, in)
		if err != nil {
			t.Fatal(err)
		}
		if gotB := (out >> 10) & 511; gotB != (a+b)&511 {
			t.Fatalf("cuccaro a=%d b=%d: got %d", a, b, gotB)
		}
		if cout := out >> 19; cout != (a+b)>>9 {
			t.Fatalf("cuccaro carry wrong for a=%d b=%d", a, b)
		}

		a10 := uint64(rng.Intn(1024))
		b10 := uint64(rng.Intn(1024))
		out2, err := sim.ClassicalRun(ta, a10|b10<<10)
		if err != nil {
			t.Fatal(err)
		}
		if gotB := out2 >> 10; gotB != (a10+b10)&1023 {
			t.Fatalf("takahashi a=%d b=%d: got %d, want %d", a10, b10, gotB, (a10+b10)&1023)
		}
	}
}
