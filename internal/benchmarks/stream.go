package benchmarks

import (
	"io"
	"math/rand"
	"strconv"
)

// Streaming workload generators: io.Readers that synthesize arbitrarily
// long OpenQASM 2.0 programs on the fly, so a million-gate compile can be
// driven without ever materializing the circuit (or even its source text).
// Generation is deterministic per (n, gates, seed), which lets benchmarks
// replay the identical stream into different compile arms.

// chunkGates is how many gate statements are rendered per refill; it only
// bounds the generator's internal buffer, not the stream length.
const chunkGates = 256

// qasmStream renders gates lazily into a small reusable buffer.
type qasmStream struct {
	pending []byte
	off     int
	next    func(buf []byte) ([]byte, bool) // appends the next chunk; false when exhausted
	done    bool
}

func (s *qasmStream) Read(p []byte) (int, error) {
	for s.off >= len(s.pending) {
		if s.done {
			return 0, io.EOF
		}
		s.pending, s.done = s.next(s.pending[:0])
		s.off = 0
		s.done = s.done || len(s.pending) == 0
		if len(s.pending) == 0 && s.done {
			return 0, io.EOF
		}
	}
	n := copy(p, s.pending[s.off:])
	s.off += n
	return n, nil
}

// header renders the canonical program header for n qubits.
func header(buf []byte, n int) []byte {
	buf = append(buf, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q["...)
	buf = strconv.AppendInt(buf, int64(n), 10)
	buf = append(buf, "];\n"...)
	return buf
}

func appendGate1(buf []byte, name string, q int) []byte {
	buf = append(buf, name...)
	buf = append(buf, " q["...)
	buf = strconv.AppendInt(buf, int64(q), 10)
	buf = append(buf, "];\n"...)
	return buf
}

func appendGate2(buf []byte, name string, a, b int) []byte {
	buf = append(buf, name...)
	buf = append(buf, " q["...)
	buf = strconv.AppendInt(buf, int64(a), 10)
	buf = append(buf, "], q["...)
	buf = strconv.AppendInt(buf, int64(b), 10)
	buf = append(buf, "];\n"...)
	return buf
}

func appendRot(buf []byte, name string, theta float64, q int) []byte {
	buf = append(buf, name...)
	buf = append(buf, '(')
	buf = strconv.AppendFloat(buf, theta, 'g', 17, 64)
	buf = append(buf, ") q["...)
	buf = strconv.AppendInt(buf, int64(q), 10)
	buf = append(buf, "];\n"...)
	return buf
}

// StreamQAOA streams a QAOA-shaped program on n qubits totalling exactly
// `gates` gate statements: a Hadamard wall, then random ZZ-interaction
// blocks (cx, rz, cx) interleaved with rx mixer walls — the all-to-all
// interaction pattern of qaoa_complete, unrolled to any length.
func StreamQAOA(n, gates int, seed int64) io.Reader {
	rng := rand.New(rand.NewSource(seed))
	emitted := 0
	wroteHeader := false
	wall := 0 // next qubit of the pending H wall, or n when done
	return &qasmStream{next: func(buf []byte) ([]byte, bool) {
		if !wroteHeader {
			buf = header(buf, n)
			wroteHeader = true
		}
		for i := 0; i < chunkGates && emitted < gates; {
			switch {
			case wall < n: // initial state-prep wall
				buf = appendGate1(buf, "h", wall)
				wall++
				emitted++
				i++
			case rng.Intn(12) == 0: // mixer wall, one qubit at a time
				buf = appendRot(buf, "rx", 2*rng.Float64(), rng.Intn(n))
				emitted++
				i++
			default: // one ZZ interaction: cx, rz, cx (clipped at the budget)
				a := rng.Intn(n)
				b := rng.Intn(n)
				for b == a {
					b = rng.Intn(n)
				}
				gamma := 2 * rng.Float64()
				block := [](func([]byte) []byte){
					func(s []byte) []byte { return appendGate2(s, "cx", a, b) },
					func(s []byte) []byte { return appendRot(s, "rz", gamma, b) },
					func(s []byte) []byte { return appendGate2(s, "cx", a, b) },
				}
				for _, f := range block {
					if emitted >= gates {
						break
					}
					buf = f(buf)
					emitted++
					i++
				}
			}
		}
		return buf, emitted >= gates
	}}
}

// StreamCliffordT streams a uniformly random Clifford+T program on n
// qubits totalling exactly `gates` gate statements — the fault-tolerant
// instruction mix {h, s, sdg, cx, t, tdg}, dominated by two-qubit gates so
// the router stays the bottleneck stage.
func StreamCliffordT(n, gates int, seed int64) io.Reader {
	rng := rand.New(rand.NewSource(seed))
	emitted := 0
	wroteHeader := false
	return &qasmStream{next: func(buf []byte) ([]byte, bool) {
		if !wroteHeader {
			buf = header(buf, n)
			wroteHeader = true
		}
		for i := 0; i < chunkGates && emitted < gates; i++ {
			switch k := rng.Intn(10); {
			case k < 2:
				buf = appendGate1(buf, "h", rng.Intn(n))
			case k < 3:
				buf = appendGate1(buf, "s", rng.Intn(n))
			case k < 4:
				buf = appendGate1(buf, "sdg", rng.Intn(n))
			case k < 5:
				buf = appendGate1(buf, "t", rng.Intn(n))
			case k < 6:
				buf = appendGate1(buf, "tdg", rng.Intn(n))
			default:
				a := rng.Intn(n)
				b := rng.Intn(n)
				for b == a {
					b = rng.Intn(n)
				}
				buf = appendGate2(buf, "cx", a, b)
			}
			emitted++
		}
		return buf, emitted >= gates
	}}
}
