package benchmarks

import (
	"testing"

	"trios/internal/circuit"
	"trios/internal/sim"
)

// cnxSpec checks that a CnX circuit flips its target exactly when all
// controls are 1 and restores every ancilla, for all inputs (capped).
func cnxSpec(t *testing.T, c *circuit.Circuit, nControls, target int, classical bool) {
	t.Helper()
	n := c.NumQubits
	limit := uint64(1) << uint(n)
	if limit > 1<<14 {
		limit = 1 << 14
	}
	cmask := uint64(1)<<uint(nControls) - 1
	for in := uint64(0); in < limit; in++ {
		var out uint64
		var err error
		if classical {
			out, err = sim.ClassicalRun(c, in)
		} else {
			out, err = sim.ClassicalOutput(c, in)
		}
		if err != nil {
			t.Fatalf("input %b: %v", in, err)
		}
		want := in
		if in&cmask == cmask {
			want ^= 1 << uint(target)
		}
		if out != want {
			t.Fatalf("input %0*b: got %0*b, want %0*b", n, in, n, out, n, want)
		}
	}
}

func TestCnXDirtyCorrect(t *testing.T) {
	for _, nc := range []int{3, 4, 6} {
		c, err := CnXDirty(nc)
		if err != nil {
			t.Fatal(err)
		}
		cnxSpec(t, c, nc, c.NumQubits-1, true)
	}
}

func TestCnXDirtyPaperSize(t *testing.T) {
	c, err := CnXDirty(6)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 11 {
		t.Errorf("qubits = %d, want 11", c.NumQubits)
	}
	if got := c.CountName(circuit.CCX); got != 16 {
		t.Errorf("toffolis = %d, want 16", got)
	}
}

func TestCnXLogAncillaCorrect(t *testing.T) {
	for _, nc := range []int{3, 5} {
		c, err := CnXLogAncilla(nc)
		if err != nil {
			t.Fatal(err)
		}
		// Clean-ancilla construction: only valid with ancillas at |0>.
		n := c.NumQubits
		for ctlTgt := uint64(0); ctlTgt < 1<<uint(nc+1); ctlTgt++ {
			in := ctlTgt&(1<<uint(nc)-1) | (ctlTgt>>uint(nc))<<uint(n-1)
			out, err := sim.ClassicalRun(c, in)
			if err != nil {
				t.Fatal(err)
			}
			want := in
			if in&(1<<uint(nc)-1) == 1<<uint(nc)-1 {
				want ^= 1 << uint(n-1)
			}
			if out != want {
				t.Fatalf("nc=%d input %b: got %b, want %b", nc, in, out, want)
			}
		}
	}
}

func TestCnXLogAncillaPaperSize(t *testing.T) {
	c, err := CnXLogAncilla(10)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 19 {
		t.Errorf("qubits = %d, want 19", c.NumQubits)
	}
	if got := c.CountName(circuit.CCX); got != 17 {
		t.Errorf("toffolis = %d, want 17", got)
	}
}

func TestCnXHalfBorrowedPaperSize(t *testing.T) {
	c, err := CnXHalfBorrowed(10)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 19 {
		t.Errorf("qubits = %d, want 19", c.NumQubits)
	}
	if got := c.CountName(circuit.CCX); got != 32 {
		t.Errorf("toffolis = %d, want 32", got)
	}
}

func TestCnXInplaceCorrect(t *testing.T) {
	// Contains controlled phase roots, so verify as a unitary against the
	// reference MCX.
	for _, nc := range []int{3, 4, 5} {
		c, err := CnXInplace(nc)
		if err != nil {
			t.Fatal(err)
		}
		ref := circuit.New(nc + 1)
		ctl := make([]int, nc)
		for i := range ctl {
			ctl[i] = i
		}
		ref.MCX(ctl, nc)
		ok, err := sim.Equivalent(ref, c, 4, 321)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("cnx_inplace(%d) is not a C%dX", nc, nc)
		}
	}
}

func TestCnXInplaceIsAncillaFree(t *testing.T) {
	c, err := CnXInplace(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 4 {
		t.Errorf("qubits = %d, want 4", c.NumQubits)
	}
	if c.CountName(circuit.CCX) == 0 {
		t.Error("in-place construction should still contain Toffolis")
	}
}

func TestCnXValidation(t *testing.T) {
	if _, err := CnXDirty(2); err == nil {
		t.Error("expected error for 2 controls")
	}
	if _, err := CnXLogAncilla(1); err == nil {
		t.Error("expected error for 1 control")
	}
	if _, err := CnXInplace(0); err == nil {
		t.Error("expected error for 0 controls")
	}
}
