package benchmarks

import (
	"fmt"
	"math"

	"trios/internal/circuit"
	"trios/internal/decompose"
)

// Grover returns Grover's search over nData qubits marking the all-ones
// state, with floor(pi/4 * sqrt(2^nData)) iterations. The C^{n-1}Z oracle
// and diffusion operator use the clean-ancilla CnX ladder (the paper's
// cnx_logancilla subroutine) on nData-3 ancillas.
// Wire order: data[0..nData-1], ancilla.
// The paper's grovers-9 is Grover(6): 6 data + 3 ancilla = 9 qubits and
// 84 Toffolis (14 per iteration x 6 iterations).
func Grover(nData int) (*circuit.Circuit, error) {
	if nData < 3 {
		return nil, fmt.Errorf("benchmarks: grover needs >= 3 data qubits, got %d", nData)
	}
	nAncilla := nData - 3 // (nData-1 controls) - 2
	c := circuit.New(nData + nAncilla)
	data := seq(0, nData)
	ancilla := seq(nData, nAncilla)
	last := data[nData-1]
	controls := data[:nData-1]

	cnz := func() error {
		c.H(last)
		if err := decompose.MCXClean(c, controls, last, ancilla); err != nil {
			return err
		}
		c.H(last)
		return nil
	}

	for _, d := range data {
		c.H(d)
	}
	iterations := int(math.Floor(math.Pi / 4 * math.Sqrt(math.Pow(2, float64(nData)))))
	for it := 0; it < iterations; it++ {
		// Oracle: phase-flip |1...1>.
		if err := cnz(); err != nil {
			return nil, err
		}
		// Diffusion: 2|s><s| - I.
		for _, d := range data {
			c.H(d)
		}
		for _, d := range data {
			c.X(d)
		}
		if err := cnz(); err != nil {
			return nil, err
		}
		for _, d := range data {
			c.X(d)
		}
		for _, d := range data {
			c.H(d)
		}
	}
	return c, nil
}

// GroverRP is Grover with relative-phase Toffolis in the oracle and
// diffusion CnZ ladders (see CnXLogAncillaRP).
func GroverRP(nData int) (*circuit.Circuit, error) {
	if nData < 3 {
		return nil, fmt.Errorf("benchmarks: grover needs >= 3 data qubits, got %d", nData)
	}
	nAncilla := nData - 3
	c := circuit.New(nData + nAncilla)
	data := seq(0, nData)
	ancilla := seq(nData, nAncilla)
	last := data[nData-1]
	controls := data[:nData-1]

	cnz := func() error {
		c.H(last)
		if err := decompose.MCXCleanRP(c, controls, last, ancilla); err != nil {
			return err
		}
		c.H(last)
		return nil
	}
	for _, d := range data {
		c.H(d)
	}
	for it := 0; it < GroverIterations(nData); it++ {
		if err := cnz(); err != nil {
			return nil, err
		}
		for _, d := range data {
			c.H(d)
		}
		for _, d := range data {
			c.X(d)
		}
		if err := cnz(); err != nil {
			return nil, err
		}
		for _, d := range data {
			c.X(d)
		}
		for _, d := range data {
			c.H(d)
		}
	}
	return c, nil
}

// GroverIterations reports the iteration count Grover(nData) uses.
func GroverIterations(nData int) int {
	return int(math.Floor(math.Pi / 4 * math.Sqrt(math.Pow(2, float64(nData)))))
}

// BernsteinVazirani returns the BV circuit recovering an nBits secret
// string; the paper assumes the all-ones string (Table 1), giving one CNOT
// per data qubit and no Toffolis.
// Wire order: data[0..nBits-1], oracle ancilla.
// The paper's bv-20 is BernsteinVazirani(19).
func BernsteinVazirani(nBits int) (*circuit.Circuit, error) {
	if nBits < 1 {
		return nil, fmt.Errorf("benchmarks: bv needs >= 1 bit, got %d", nBits)
	}
	c := circuit.New(nBits + 1)
	anc := nBits
	c.X(anc)
	c.H(anc)
	for i := 0; i < nBits; i++ {
		c.H(i)
	}
	for i := 0; i < nBits; i++ {
		c.CX(i, anc)
	}
	for i := 0; i < nBits; i++ {
		c.H(i)
	}
	return c, nil
}

// QAOAComplete returns one QAOA layer (p=1) for Max-Cut on the complete
// graph K_n: a ZZ phase-separation term per edge (2 CNOTs + rz each) and an
// rx mixer layer. gamma and beta are fixed representative angles; the gate
// counts, which are what the compiler experiments consume, do not depend on
// them. The paper's qaoa_complete-10 is QAOAComplete(10): 90 CNOTs, no
// Toffolis.
func QAOAComplete(n int) (*circuit.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("benchmarks: qaoa needs >= 2 qubits, got %d", n)
	}
	const gamma, beta = 0.4, 0.8
	c := circuit.New(n)
	for i := 0; i < n; i++ {
		c.H(i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c.CX(i, j)
			c.RZ(2*gamma, j)
			c.CX(i, j)
		}
	}
	for i := 0; i < n; i++ {
		c.RX(2*beta, i)
	}
	return c, nil
}
