package benchmarks

import (
	"fmt"

	"trios/internal/circuit"
	"trios/internal/decompose"
)

// Benchmark is one Table-1 workload: a circuit generator plus the paper's
// published size so reproduction drift is visible.
type Benchmark struct {
	// Name follows the paper's labels, e.g. "cnx_dirty-11".
	Name string
	// Build generates the logical circuit.
	Build func() (*circuit.Circuit, error)
	// Paper-published counts (Table 1): qubits, Toffoli gates, and total
	// CNOTs after decomposing Toffolis with the 8-CNOT form, excluding
	// routing SWAPs.
	PaperQubits   int
	PaperToffolis int
	PaperCNOTs    int
	// HasToffolis records whether the paper expects Trios to help (§5.2:
	// the three Toffoli-free benchmarks are controls).
	HasToffolis bool
}

// All returns the paper's eleven benchmarks in Table-1 order.
func All() []Benchmark {
	return []Benchmark{
		{
			Name:        "cnx_dirty-11",
			Build:       func() (*circuit.Circuit, error) { return CnXDirty(6) },
			PaperQubits: 11, PaperToffolis: 16, PaperCNOTs: 128, HasToffolis: true,
		},
		{
			Name:        "cnx_halfborrowed-19",
			Build:       func() (*circuit.Circuit, error) { return CnXHalfBorrowed(10) },
			PaperQubits: 19, PaperToffolis: 32, PaperCNOTs: 256, HasToffolis: true,
		},
		{
			Name:        "cnx_logancilla-19",
			Build:       func() (*circuit.Circuit, error) { return CnXLogAncilla(10) },
			PaperQubits: 19, PaperToffolis: 17, PaperCNOTs: 136, HasToffolis: true,
		},
		{
			Name:        "cnx_inplace-4",
			Build:       func() (*circuit.Circuit, error) { return CnXInplace(3) },
			PaperQubits: 4, PaperToffolis: 54, PaperCNOTs: 490, HasToffolis: true,
		},
		{
			Name:        "cuccaro_adder-20",
			Build:       func() (*circuit.Circuit, error) { return CuccaroAdder(9) },
			PaperQubits: 20, PaperToffolis: 18, PaperCNOTs: 190, HasToffolis: true,
		},
		{
			Name:        "takahashi_adder-20",
			Build:       func() (*circuit.Circuit, error) { return TakahashiAdder(10) },
			PaperQubits: 20, PaperToffolis: 18, PaperCNOTs: 188, HasToffolis: true,
		},
		{
			Name:        "incrementer_borrowedbit-5",
			Build:       func() (*circuit.Circuit, error) { return IncrementerBorrowedBit(4) },
			PaperQubits: 5, PaperToffolis: 50, PaperCNOTs: 448, HasToffolis: true,
		},
		{
			Name:        "grovers-9",
			Build:       func() (*circuit.Circuit, error) { return Grover(6) },
			PaperQubits: 9, PaperToffolis: 84, PaperCNOTs: 672, HasToffolis: true,
		},
		{
			Name:        "qft_adder-16",
			Build:       func() (*circuit.Circuit, error) { return QFTAdder(8) },
			PaperQubits: 16, PaperToffolis: 0, PaperCNOTs: 92, HasToffolis: false,
		},
		{
			Name:        "bv-20",
			Build:       func() (*circuit.Circuit, error) { return BernsteinVazirani(19) },
			PaperQubits: 20, PaperToffolis: 0, PaperCNOTs: 19, HasToffolis: false,
		},
		{
			Name:        "qaoa_complete-10",
			Build:       func() (*circuit.Circuit, error) { return QAOAComplete(10) },
			PaperQubits: 10, PaperToffolis: 0, PaperCNOTs: 90, HasToffolis: false,
		},
	}
}

// ByName returns the benchmark with the given Table-1 label.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("benchmarks: unknown benchmark %q", name)
}

// Measured summarizes a generated circuit the way Table 1 does.
type Measured struct {
	Qubits   int
	Toffolis int
	// CNOTs is the two-qubit gate count after expanding every Toffoli with
	// the 8-CNOT decomposition, with no routing SWAPs (Table 1's metric;
	// controlled-phase gates count as one two-qubit gate each).
	CNOTs int
}

// Measure generates the circuit and tabulates it Table-1 style.
func (b Benchmark) Measure() (Measured, error) {
	c, err := b.Build()
	if err != nil {
		return Measured{}, err
	}
	kept, err := decompose.KeepToffoli(c)
	if err != nil {
		return Measured{}, err
	}
	toffolis := kept.CountName(circuit.CCX)
	full, err := decompose.ToffoliAll(c, decompose.Eight)
	if err != nil {
		return Measured{}, err
	}
	return Measured{
		Qubits:   c.NumQubits,
		Toffolis: toffolis,
		CNOTs:    full.CollectStats().TwoQubit,
	}, nil
}
