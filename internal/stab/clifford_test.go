package stab

import (
	"math"
	"math/rand"
	"testing"

	"trios/internal/circuit"
)

// TestClassifierAgreesWithBackend is the contract between the structural
// classifier (circuit.IsCliffordGate) and the tableau backend: every gate
// the classifier accepts must apply without error, and every gate it
// rejects must be refused — otherwise the engine's auto-dispatch would pick
// a backend that cannot simulate the circuit (or needlessly fall back to
// the exponential dense path).
func TestClassifierAgreesWithBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	angles := []float64{
		0, math.Pi / 2, math.Pi, 3 * math.Pi / 2, -math.Pi / 2, 2 * math.Pi,
		math.Pi / 4, -math.Pi / 4, 0.3, 1.7, -2.9,
	}
	angle := func() float64 { return angles[rng.Intn(len(angles))] }
	const n = 4
	var gates []circuit.Gate
	for _, name := range []circuit.Name{
		circuit.I, circuit.X, circuit.Y, circuit.Z, circuit.H,
		circuit.S, circuit.Sdg, circuit.T, circuit.Tdg,
		circuit.SX, circuit.SXdg,
	} {
		gates = append(gates, circuit.NewGate(name, []int{rng.Intn(n)}))
	}
	for trial := 0; trial < 200; trial++ {
		for _, name := range []circuit.Name{circuit.RX, circuit.RY, circuit.RZ, circuit.U1} {
			gates = append(gates, circuit.NewGate(name, []int{rng.Intn(n)}, angle()))
		}
		gates = append(gates,
			circuit.NewGate(circuit.U2, []int{rng.Intn(n)}, angle(), angle()),
			circuit.NewGate(circuit.U3, []int{rng.Intn(n)}, angle(), angle(), angle()),
			circuit.NewGate(circuit.CP, []int{0, 1}, angle()),
			circuit.NewGate(circuit.CX, []int{0, 1}),
			circuit.NewGate(circuit.CZ, []int{1, 2}),
			circuit.NewGate(circuit.SWAP, []int{2, 3}),
			circuit.NewGate(circuit.CCX, []int{0, 1, 2}),
			circuit.NewGate(circuit.CCZ, []int{0, 1, 2}),
			circuit.NewGate(circuit.RCCX, []int{1, 2, 3}),
		)
	}
	s := NewState(n)
	for _, g := range gates {
		err := s.ApplyGate(g)
		classified := circuit.IsCliffordGate(g)
		if classified && err != nil {
			t.Errorf("classifier accepts %v but backend errors: %v", g, err)
		}
		if !classified && err == nil {
			t.Errorf("classifier rejects %v but backend applied it", g)
		}
		// Reset after any error: a failed u3 may have partially applied.
		if err != nil {
			s.Reset()
		}
	}
}

// TestIsCliffordMatchesCircuitClassifier checks the circuit-level dry-run
// classifier against the structural one on random circuits.
func TestIsCliffordMatchesCircuitClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		c := circuit.New(4)
		for i := 0; i < 12; i++ {
			switch rng.Intn(6) {
			case 0:
				c.H(rng.Intn(4))
			case 1:
				c.S(rng.Intn(4))
			case 2:
				c.CX(rng.Intn(2), 2+rng.Intn(2))
			case 3:
				if rng.Intn(4) == 0 {
					c.T(rng.Intn(4))
				} else {
					c.Z(rng.Intn(4))
				}
			case 4:
				c.RZ(float64(rng.Intn(5))*math.Pi/2, rng.Intn(4))
			case 5:
				c.U3(float64(rng.Intn(4))*math.Pi/2, float64(rng.Intn(4))*math.Pi/2,
					rng.Float64(), rng.Intn(4))
			}
		}
		if got, want := IsClifford(c), circuit.IsClifford(c); got != want {
			t.Fatalf("trial %d: stab.IsClifford=%v, circuit.IsClifford=%v for\n%v",
				trial, got, want, c)
		}
	}
}

// TestExtendedGates verifies the newly supported Clifford gates against
// their defining decompositions on random stabilizer states.
func TestExtendedGates(t *testing.T) {
	build := func(f func(s *State)) *State {
		s := NewState(2)
		// A non-trivial fixed state: (|00>+|11>)/sqrt2 with a phase twist.
		s.H(0)
		s.CX(0, 1)
		s.S(1)
		f(s)
		return s
	}
	cases := []struct {
		name string
		gate circuit.Gate
		ref  func(s *State)
	}{
		{"sx=HSH", circuit.NewGate(circuit.SX, []int{0}), func(s *State) { s.H(0); s.S(0); s.H(0) }},
		{"sxdg=HSdgH", circuit.NewGate(circuit.SXdg, []int{0}), func(s *State) { s.H(0); s.sdg(0); s.H(0) }},
		{"rz(pi)=Z", circuit.NewGate(circuit.RZ, []int{1}, math.Pi), func(s *State) { s.Z(1) }},
		{"rx(pi)=X", circuit.NewGate(circuit.RX, []int{1}, math.Pi), func(s *State) { s.X(1) }},
		{"ry(pi)=Y", circuit.NewGate(circuit.RY, []int{0}, math.Pi), func(s *State) { s.Y(0) }},
		{"rx(pi/2)=H.S.H", circuit.NewGate(circuit.RX, []int{0}, math.Pi/2), func(s *State) { s.H(0); s.S(0); s.H(0) }},
		{"cp(pi)=CZ", circuit.NewGate(circuit.CP, []int{0, 1}, math.Pi), func(s *State) { s.CZ(0, 1) }},
		{"cp(0)=I", circuit.NewGate(circuit.CP, []int{0, 1}, 0), func(s *State) {}},
	}
	for _, tc := range cases {
		got := build(func(s *State) {
			if err := s.ApplyGate(tc.gate); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		})
		want := build(tc.ref)
		if !got.Equal(want) {
			t.Errorf("%s: states differ\n got %v\nwant %v", tc.name, got.Stabilizers(), want.Stabilizers())
		}
	}
}

func TestReset(t *testing.T) {
	s := NewState(3)
	s.H(0)
	s.CX(0, 1)
	s.S(2)
	s.Reset()
	if !s.Equal(NewState(3)) {
		t.Error("Reset did not restore |000>")
	}
}
