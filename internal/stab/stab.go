// Package stab is an Aaronson-Gottesman (CHP-style) stabilizer tableau
// simulator for Clifford circuits. Clifford simulation is polynomial in the
// qubit count, so it verifies compiled circuits at full device size where
// the statevector simulator would need gigabytes — e.g. the bv-20 benchmark
// (H and CX only) compiled onto any 20-qubit topology.
//
// The state is the stabilizer group of the current state, represented by n
// generators over the Pauli group: generator i has X-part x[i], Z-part z[i]
// (bit vectors over qubits) and a sign r[i] in {0, 1} for +/-.
package stab

import (
	"fmt"
	"math"
	"sort"

	"trios/internal/circuit"
)

// State is an n-qubit stabilizer state.
type State struct {
	n int
	// x[i][q], z[i][q] as bit-packed rows; r[i] in {0,1} is the sign bit.
	x [][]uint64
	z [][]uint64
	r []uint8
}

// words returns the number of 64-bit words needed for n qubits.
func words(n int) int { return (n + 63) / 64 }

// NewState returns |0...0>, stabilized by +Z_i for every qubit.
func NewState(n int) *State {
	if n <= 0 {
		panic("stab: non-positive qubit count")
	}
	s := &State{
		n: n,
		x: make([][]uint64, n),
		z: make([][]uint64, n),
		r: make([]uint8, n),
	}
	w := words(n)
	for i := 0; i < n; i++ {
		s.x[i] = make([]uint64, w)
		s.z[i] = make([]uint64, w)
		s.z[i][i/64] |= 1 << uint(i%64)
	}
	return s
}

// NumQubits returns the number of qubits.
func (s *State) NumQubits() int { return s.n }

// Reset returns the state to |0...0> in place, reusing the tableau storage.
// Trajectory workers reuse one state across thousands of shots.
func (s *State) Reset() {
	for i := 0; i < s.n; i++ {
		for w := range s.x[i] {
			s.x[i][w] = 0
			s.z[i][w] = 0
		}
		s.z[i][i/64] |= 1 << uint(i%64)
		s.r[i] = 0
	}
}

func (s *State) getX(i, q int) bool { return s.x[i][q/64]&(1<<uint(q%64)) != 0 }
func (s *State) getZ(i, q int) bool { return s.z[i][q/64]&(1<<uint(q%64)) != 0 }
func (s *State) flipX(i, q int)     { s.x[i][q/64] ^= 1 << uint(q%64) }
func (s *State) flipZ(i, q int)     { s.z[i][q/64] ^= 1 << uint(q%64) }

// H applies a Hadamard on qubit q.
func (s *State) H(q int) {
	for i := 0; i < s.n; i++ {
		xa, za := s.getX(i, q), s.getZ(i, q)
		if xa && za {
			s.r[i] ^= 1
		}
		if xa != za {
			s.flipX(i, q)
			s.flipZ(i, q)
		}
	}
}

// S applies a phase gate on qubit q.
func (s *State) S(q int) {
	for i := 0; i < s.n; i++ {
		xa, za := s.getX(i, q), s.getZ(i, q)
		if xa && za {
			s.r[i] ^= 1
		}
		if xa {
			s.flipZ(i, q)
		}
	}
}

// X applies a Pauli X on qubit q.
func (s *State) X(q int) {
	for i := 0; i < s.n; i++ {
		if s.getZ(i, q) {
			s.r[i] ^= 1
		}
	}
}

// Z applies a Pauli Z on qubit q.
func (s *State) Z(q int) {
	for i := 0; i < s.n; i++ {
		if s.getX(i, q) {
			s.r[i] ^= 1
		}
	}
}

// Y applies a Pauli Y on qubit q (Y = iXZ; the i is a global phase).
func (s *State) Y(q int) {
	s.Z(q)
	s.X(q)
}

// CX applies a CNOT with control a and target b.
func (s *State) CX(a, b int) {
	for i := 0; i < s.n; i++ {
		xa, za := s.getX(i, a), s.getZ(i, a)
		xb, zb := s.getX(i, b), s.getZ(i, b)
		if xa && zb && (xb == za) {
			s.r[i] ^= 1
		}
		if xa {
			s.flipX(i, b)
		}
		if zb {
			s.flipZ(i, a)
		}
	}
}

// CZ applies a controlled-Z between a and b.
func (s *State) CZ(a, b int) {
	s.H(b)
	s.CX(a, b)
	s.H(b)
}

// Swap exchanges qubits a and b.
func (s *State) Swap(a, b int) {
	s.CX(a, b)
	s.CX(b, a)
	s.CX(a, b)
}

// ApplyGate applies one Clifford gate from the circuit IR, recognizing
// Clifford rotation gates by their parameters (multiples of pi/2; CP needs a
// multiple of pi). Non-Clifford gates return an error. The accepted set
// agrees gate-for-gate with circuit.IsCliffordGate, which the test suite
// cross-checks.
func (s *State) ApplyGate(g circuit.Gate) error {
	for _, q := range g.Qubits {
		if q < 0 || q >= s.n {
			return fmt.Errorf("stab: qubit %d outside [0,%d)", q, s.n)
		}
	}
	switch g.Name {
	case circuit.I, circuit.Barrier:
		return nil
	case circuit.H:
		s.H(g.Qubits[0])
	case circuit.S:
		s.S(g.Qubits[0])
	case circuit.Sdg:
		s.sdg(g.Qubits[0])
	case circuit.X:
		s.X(g.Qubits[0])
	case circuit.Y:
		s.Y(g.Qubits[0])
	case circuit.Z:
		s.Z(g.Qubits[0])
	case circuit.SX:
		// sqrt(X) = H S H exactly (up to global phase).
		q := g.Qubits[0]
		s.H(q)
		s.S(q)
		s.H(q)
	case circuit.SXdg:
		q := g.Qubits[0]
		s.H(q)
		s.sdg(q)
		s.H(q)
	case circuit.RZ:
		// rz(k*pi/2) ~ u1(k*pi/2) up to a global phase the tableau ignores.
		return s.applyU1(g.Qubits[0], g.Params[0])
	case circuit.RX:
		// rx(theta) = H rz(theta) H up to global phase.
		k := quarter(g.Params[0])
		if k < 0 {
			return fmt.Errorf("stab: rx(%g) is not Clifford", g.Params[0])
		}
		q := g.Qubits[0]
		s.H(q)
		for i := 0; i < k; i++ {
			s.S(q)
		}
		s.H(q)
	case circuit.RY:
		k := quarter(g.Params[0])
		if k < 0 {
			return fmt.Errorf("stab: ry(%g) is not Clifford", g.Params[0])
		}
		s.applyRYQuarter(g.Qubits[0], k)
	case circuit.CX:
		s.CX(g.Qubits[0], g.Qubits[1])
	case circuit.CZ:
		s.CZ(g.Qubits[0], g.Qubits[1])
	case circuit.CP:
		// cp(0) = I and cp(pi) = CZ; odd quarter turns (controlled-S) are not
		// Clifford.
		k := quarter(g.Params[0])
		if k < 0 || k%2 != 0 {
			return fmt.Errorf("stab: cp(%g) is not Clifford", g.Params[0])
		}
		if k == 2 {
			s.CZ(g.Qubits[0], g.Qubits[1])
		}
	case circuit.SWAP:
		s.Swap(g.Qubits[0], g.Qubits[1])
	case circuit.U1:
		return s.applyU1(g.Qubits[0], g.Params[0])
	case circuit.U2:
		return s.applyU2(g.Qubits[0], g.Params[0], g.Params[1])
	case circuit.U3:
		return s.applyU3(g.Qubits[0], g.Params[0], g.Params[1], g.Params[2])
	default:
		return fmt.Errorf("stab: %v is not a recognized Clifford gate", g.Name)
	}
	return nil
}

// sdg applies S-dagger as three S gates.
func (s *State) sdg(q int) {
	s.S(q)
	s.S(q)
	s.S(q)
}

// applyRYQuarter applies RY(k*pi/2) for k in {0,1,2,3} via
// RY(pi/2) = X·H (apply H first, then X) and RY(pi) ~ Y.
func (s *State) applyRYQuarter(q, k int) {
	switch k {
	case 0:
	case 1:
		s.H(q)
		s.X(q)
	case 2:
		s.Y(q)
	case 3:
		s.H(q)
		s.X(q)
		s.Y(q)
	}
}

// quarter classifies an angle as a multiple of pi/2 in {0,1,2,3}, or -1.
// It is the engine's classifier (circuit.QuarterTurns) by definition, not a
// copy: dispatch correctness requires the classifier and this backend to
// agree on every angle.
func quarter(a float64) int { return circuit.QuarterTurns(a) }

// applyU1 handles u1(k*pi/2): I, S, Z, Sdg.
func (s *State) applyU1(q int, lambda float64) error {
	k := quarter(lambda)
	if k < 0 {
		return fmt.Errorf("stab: u1(%g) is not Clifford", lambda)
	}
	for i := 0; i < k; i++ {
		s.S(q)
	}
	return nil
}

// applyU2 handles u2(phi, lambda) via the ZYZ form
// u2 ~ RZ(phi) RY(pi/2) RZ(lambda) with RY(pi/2) = X·H
// (apply H first, then X): sequence u1(lambda), H, X, u1(phi).
func (s *State) applyU2(q int, phi, lambda float64) error {
	return s.applyU3(q, math.Pi/2, phi, lambda)
}

// applyU3 handles u3 angles that are multiples of pi/2 via the ZYZ
// decomposition u3(t, p, l) ~ u1(p) RY(t) u1(l), with RY(pi/2) = X·H and
// RY(pi) ~ Y up to global phase.
func (s *State) applyU3(q int, theta, phi, lambda float64) error {
	k := quarter(theta)
	if k < 0 {
		return fmt.Errorf("stab: u3(%g,...) is not Clifford", theta)
	}
	if err := s.applyU1(q, lambda); err != nil {
		return fmt.Errorf("stab: u3(%g,%g,%g) is not Clifford", theta, phi, lambda)
	}
	s.applyRYQuarter(q, k)
	if err := s.applyU1(q, phi); err != nil {
		return fmt.Errorf("stab: u3(%g,%g,%g) is not Clifford", theta, phi, lambda)
	}
	return nil
}

// ApplyCircuit applies every gate of a Clifford circuit.
func (s *State) ApplyCircuit(c *circuit.Circuit) error {
	if c.NumQubits > s.n {
		return fmt.Errorf("stab: circuit needs %d qubits, state has %d", c.NumQubits, s.n)
	}
	for i := range c.Gates {
		if c.Gates[i].Name == circuit.Measure {
			continue // verification states are compared before readout
		}
		if err := s.ApplyGate(c.Gates[i]); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
	}
	return nil
}

// IsClifford reports whether every gate of a circuit is recognized as
// Clifford (dry run on a scratch state).
func IsClifford(c *circuit.Circuit) bool {
	s := NewState(max(1, c.NumQubits))
	for i := range c.Gates {
		if c.Gates[i].Name == circuit.Measure {
			continue
		}
		if err := s.ApplyGate(c.Gates[i]); err != nil {
			return false
		}
	}
	return true
}

// Equal reports whether two stabilizer states are identical (same
// stabilizer group including signs), by comparing canonicalized tableaus.
func (s *State) Equal(o *State) bool {
	if s.n != o.n {
		return false
	}
	a, b := s.Copy(), o.Copy()
	a.canonicalize()
	b.canonicalize()
	for i := 0; i < s.n; i++ {
		if a.r[i] != b.r[i] {
			return false
		}
		for w := range a.x[i] {
			if a.x[i][w] != b.x[i][w] || a.z[i][w] != b.z[i][w] {
				return false
			}
		}
	}
	return true
}

// Copy returns a deep copy.
func (s *State) Copy() *State {
	c := &State{n: s.n, x: make([][]uint64, s.n), z: make([][]uint64, s.n), r: make([]uint8, s.n)}
	copy(c.r, s.r)
	for i := 0; i < s.n; i++ {
		c.x[i] = append([]uint64{}, s.x[i]...)
		c.z[i] = append([]uint64{}, s.z[i]...)
	}
	return c
}

// PermuteQubits returns a new state with qubit q of the input relabeled to
// perm[q], used to undo the placement permutation routing leaves behind
// before comparing compiled and source states.
func (s *State) PermuteQubits(perm []int) *State {
	if len(perm) != s.n {
		panic("stab: permutation length mismatch")
	}
	out := NewState(s.n)
	copy(out.r, s.r)
	for i := 0; i < s.n; i++ {
		for w := range out.x[i] {
			out.x[i][w] = 0
			out.z[i][w] = 0
		}
		for q := 0; q < s.n; q++ {
			if s.getX(i, q) {
				out.flipX(i, perm[q])
			}
			if s.getZ(i, q) {
				out.flipZ(i, perm[q])
			}
		}
	}
	return out
}

// rowMul multiplies generator h by generator i (h <- h*i), tracking the
// sign with the Aaronson-Gottesman phase function.
func (s *State) rowMul(h, i int) {
	// Phase exponent of i^g over all qubits plus existing signs, mod 4.
	phase := 2*int(s.r[h]) + 2*int(s.r[i])
	for q := 0; q < s.n; q++ {
		x1, z1 := s.getX(i, q), s.getZ(i, q)
		x2, z2 := s.getX(h, q), s.getZ(h, q)
		phase += gExp(x1, z1, x2, z2)
	}
	phase = ((phase % 4) + 4) % 4
	if phase%2 != 0 {
		panic("stab: generator product has imaginary phase")
	}
	if phase == 2 {
		s.r[h] = 1
	} else {
		s.r[h] = 0
	}
	for w := range s.x[h] {
		s.x[h][w] ^= s.x[i][w]
		s.z[h][w] ^= s.z[i][w]
	}
}

// gExp is the exponent of i contributed when multiplying single-qubit
// Paulis (x1,z1) * (x2,z2) (Aaronson-Gottesman g function).
func gExp(x1, z1, x2, z2 bool) int {
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	switch {
	case !x1 && !z1:
		return 0
	case x1 && z1: // Y
		return b2i(z2) - b2i(x2)
	case x1 && !z1: // X
		return b2i(z2) * (2*b2i(x2) - 1)
	default: // Z
		return b2i(x2) * (1 - 2*b2i(z2))
	}
}

// canonicalize brings the tableau to a unique reduced row-echelon form:
// X-block first (pivot on X bits by qubit order), then Z-block.
func (s *State) canonicalize() {
	row := 0
	// X part.
	for q := 0; q < s.n; q++ {
		pivot := -1
		for i := row; i < s.n; i++ {
			if s.getX(i, q) {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		s.swapRows(row, pivot)
		for i := 0; i < s.n; i++ {
			if i != row && s.getX(i, q) {
				s.rowMul(i, row)
			}
		}
		row++
	}
	// Z part on the remaining rows.
	for q := 0; q < s.n; q++ {
		pivot := -1
		for i := row; i < s.n; i++ {
			if s.getZ(i, q) {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		s.swapRows(row, pivot)
		// The pivot row is Z-only, so multiplying any other row by it
		// leaves that row's X part intact; clearing the column from every
		// row yields a unique reduced form.
		for i := 0; i < s.n; i++ {
			if i != row && s.getZ(i, q) {
				s.rowMul(i, row)
			}
		}
		row++
	}
}

func (s *State) swapRows(a, b int) {
	s.x[a], s.x[b] = s.x[b], s.x[a]
	s.z[a], s.z[b] = s.z[b], s.z[a]
	s.r[a], s.r[b] = s.r[b], s.r[a]
}

// Generator returns the i-th stabilizer generator as X/Z bit slices over
// qubits plus the sign bit (0 for +, 1 for -). Used by cross-validation
// tests and debugging tools; the returned slices are copies.
func (s *State) Generator(i int) (xs, zs []bool, sign uint8) {
	xs = make([]bool, s.n)
	zs = make([]bool, s.n)
	for q := 0; q < s.n; q++ {
		xs[q] = s.getX(i, q)
		zs[q] = s.getZ(i, q)
	}
	return xs, zs, s.r[i]
}

// Stabilizers renders the generators as Pauli strings for debugging, e.g.
// "+XIZ". Rows are sorted for stable output.
func (s *State) Stabilizers() []string {
	out := make([]string, s.n)
	for i := 0; i < s.n; i++ {
		buf := make([]byte, 0, s.n+1)
		if s.r[i] == 0 {
			buf = append(buf, '+')
		} else {
			buf = append(buf, '-')
		}
		for q := 0; q < s.n; q++ {
			x, z := s.getX(i, q), s.getZ(i, q)
			switch {
			case x && z:
				buf = append(buf, 'Y')
			case x:
				buf = append(buf, 'X')
			case z:
				buf = append(buf, 'Z')
			default:
				buf = append(buf, 'I')
			}
		}
		out[i] = string(buf)
	}
	sort.Strings(out)
	return out
}
