package stab

import (
	"math"
	"math/rand"
	"testing"

	"trios/internal/circuit"
	"trios/internal/decompose"
)

func TestInitialState(t *testing.T) {
	s := NewState(3)
	want := []string{"+IIZ", "+IZI", "+ZII"}
	got := s.Stabilizers()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stabilizers = %v", got)
		}
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.H(0)
	s.CX(0, 1)
	got := s.Stabilizers()
	// Bell state: stabilized by XX and ZZ.
	want := []string{"+XX", "+ZZ"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bell stabilizers = %v", got)
		}
	}
}

func TestXFlipsSign(t *testing.T) {
	s := NewState(1)
	s.X(0)
	if got := s.Stabilizers(); got[0] != "-Z" {
		t.Errorf("X|0> stabilizer = %v", got)
	}
}

func TestEqualCanonicalization(t *testing.T) {
	// Same state built two ways: |+>|+> via H,H and via H,H with an extra
	// CZ CZ pair that cancels.
	a := NewState(2)
	a.H(0)
	a.H(1)
	b := NewState(2)
	b.H(0)
	b.H(1)
	b.CZ(0, 1)
	b.CZ(0, 1)
	if !a.Equal(b) {
		t.Error("equal states reported different")
	}
	c := NewState(2)
	c.H(0)
	if a.Equal(c) {
		t.Error("different states reported equal")
	}
}

func TestSwapGate(t *testing.T) {
	s := NewState(2)
	s.X(0)
	s.Swap(0, 1)
	got := s.Stabilizers()
	// After X(0), Swap: qubit 1 is |1>: stabilizers -Z on qubit 1, +Z on 0
	// (string index = qubit).
	want := map[string]bool{"+ZI": true, "-IZ": true}
	for _, g := range got {
		if !want[g] {
			t.Fatalf("swap stabilizers = %v", got)
		}
	}
}

func TestNonCliffordRejected(t *testing.T) {
	s := NewState(1)
	if err := s.ApplyGate(circuit.NewGate(circuit.T, []int{0})); err == nil {
		t.Error("T should be rejected")
	}
	if err := s.ApplyGate(circuit.NewGate(circuit.U1, []int{0}, math.Pi/4)); err == nil {
		t.Error("u1(pi/4) should be rejected")
	}
	c := circuit.New(1)
	c.T(0)
	if IsClifford(c) {
		t.Error("IsClifford accepted T")
	}
	c2 := circuit.New(2)
	c2.H(0).CX(0, 1).S(1)
	if !IsClifford(c2) {
		t.Error("IsClifford rejected a Clifford circuit")
	}
}

// TestCliffordEquivalenceAfterLowering checks that lowering a Clifford
// circuit to the IBM basis preserves the stabilizer state at a size the
// statevector could not check cheaply.
func TestCliffordEquivalenceAfterLowering(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := randomClifford(rng, 20, 200)
	lowered, err := decompose.LowerToBasis(c)
	if err != nil {
		t.Fatal(err)
	}
	a := NewState(20)
	if err := a.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	b := NewState(20)
	if err := b.ApplyCircuit(lowered); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("lowering changed a 20-qubit Clifford circuit")
	}
}

func randomClifford(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(6) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.S(rng.Intn(n))
		case 2:
			c.X(rng.Intn(n))
		case 3:
			c.Z(rng.Intn(n))
		case 4:
			p := rng.Perm(n)
			c.CX(p[0], p[1])
		default:
			p := rng.Perm(n)
			c.CZ(p[0], p[1])
		}
	}
	return c
}
