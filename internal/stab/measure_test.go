package stab

import (
	"math/rand"
	"testing"
)

func TestMeasureDeterministicZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewState(2)
	bit, det := s.MeasureZ(0, rng)
	if bit != 0 || !det {
		t.Errorf("measuring |0> gave %d, det=%v", bit, det)
	}
}

func TestMeasureDeterministicOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewState(1)
	s.X(0)
	bit, det := s.MeasureZ(0, rng)
	if bit != 1 || !det {
		t.Errorf("measuring |1> gave %d, det=%v", bit, det)
	}
}

func TestMeasurePlusStateRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	zeros, ones := 0, 0
	for trial := 0; trial < 400; trial++ {
		s := NewState(1)
		s.H(0)
		bit, det := s.MeasureZ(0, rng)
		if det {
			t.Fatal("measuring |+> should be random")
		}
		if bit == 0 {
			zeros++
		} else {
			ones++
		}
		// Post-measurement the state is the observed eigenstate:
		// re-measuring must be deterministic and equal.
		bit2, det2 := s.MeasureZ(0, rng)
		if !det2 || bit2 != bit {
			t.Fatalf("re-measurement gave %d det=%v after %d", bit2, det2, bit)
		}
	}
	if zeros < 140 || ones < 140 {
		t.Errorf("outcomes skewed: %d zeros, %d ones", zeros, ones)
	}
}

func TestMeasureBellCorrelations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		s := NewState(2)
		s.H(0)
		s.CX(0, 1)
		b0, _ := s.MeasureZ(0, rng)
		b1, det := s.MeasureZ(1, rng)
		if !det {
			t.Fatal("second bell measurement must be deterministic")
		}
		if b0 != b1 {
			t.Fatalf("bell outcomes disagree: %d vs %d", b0, b1)
		}
	}
}

func TestMeasureAllGHZ(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seen := map[uint64]int{}
	for trial := 0; trial < 300; trial++ {
		s := NewState(3)
		s.H(0)
		s.CX(0, 1)
		s.CX(1, 2)
		out := s.MeasureAll(rng)
		seen[out]++
	}
	if len(seen) != 2 {
		t.Fatalf("GHZ outcomes: %v", seen)
	}
	if seen[0] == 0 || seen[7] == 0 {
		t.Fatalf("GHZ should yield 000 or 111: %v", seen)
	}
}

func TestMeasureAnticorrelatedBell(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		// |01> + |10>: X on one side of the bell pair.
		s := NewState(2)
		s.H(0)
		s.CX(0, 1)
		s.X(1)
		b0, _ := s.MeasureZ(0, rng)
		b1, _ := s.MeasureZ(1, rng)
		if b0 == b1 {
			t.Fatalf("anticorrelated bell gave %d,%d", b0, b1)
		}
	}
}

func TestMeasureBVRecoversSecret(t *testing.T) {
	// The BV circuit measured on the tableau returns the all-ones secret
	// deterministically on the data qubits.
	rng := rand.New(rand.NewSource(7))
	n := 19
	s := NewState(n + 1)
	s.X(n)
	s.H(n)
	for i := 0; i < n; i++ {
		s.H(i)
	}
	for i := 0; i < n; i++ {
		s.CX(i, n)
	}
	for i := 0; i < n; i++ {
		s.H(i)
	}
	for q := 0; q < n; q++ {
		bit, det := s.MeasureZ(q, rng)
		if !det || bit != 1 {
			t.Fatalf("data qubit %d: bit=%d det=%v, want deterministic 1", q, bit, det)
		}
	}
}
