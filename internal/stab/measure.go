package stab

import (
	"math/rand"
)

// MeasureZ measures qubit q in the computational basis, collapsing the
// state. It returns the outcome bit and whether the outcome was
// deterministic (the state was already a Z eigenstate of q).
//
// The implementation follows the Aaronson-Gottesman measurement procedure
// adapted to a stabilizer-only tableau: if some generator anticommutes with
// Z_q (has an X on q), the outcome is random — that generator is replaced by
// ±Z_q and multiplied into the other anticommuting generators. Otherwise
// Z_q (possibly negated) is in the stabilizer group; the sign is recovered
// by reducing Z_q against the generators.
func (s *State) MeasureZ(q int, rng *rand.Rand) (outcome int, deterministic bool) {
	// Find a generator with X on q.
	p := -1
	for i := 0; i < s.n; i++ {
		if s.getX(i, q) {
			p = i
			break
		}
	}
	if p >= 0 {
		// Random outcome: all other generators with X_q get multiplied by
		// generator p so they commute with Z_q; generator p becomes ±Z_q.
		for i := 0; i < s.n; i++ {
			if i != p && s.getX(i, q) {
				s.rowMul(i, p)
			}
		}
		bit := uint8(0)
		if rng.Float64() < 0.5 {
			bit = 1
		}
		for w := range s.x[p] {
			s.x[p][w] = 0
			s.z[p][w] = 0
		}
		s.flipZ(p, q)
		s.r[p] = bit
		return int(bit), false
	}

	// Deterministic: express Z_q as a product of generators by Gaussian
	// elimination on a scratch copy, accumulating the sign.
	scratch := s.Copy()
	scratch.canonicalize()
	// After canonicalization the Z-only rows are in reduced form; reduce
	// the target Pauli Z_q against them.
	targetZ := make([]uint64, words(s.n))
	targetZ[q/64] |= 1 << uint(q%64)
	sign := uint8(0)
	for i := 0; i < scratch.n; i++ {
		if rowIsZero(scratch, i) {
			continue
		}
		// Find the row's leading Z bit (rows with X can't contribute to a
		// pure-Z product on a stabilizer tableau in canonical form).
		if anyX(scratch, i) {
			continue
		}
		lead := leadingZ(scratch, i)
		if lead < 0 {
			continue
		}
		if targetZ[lead/64]&(1<<uint(lead%64)) != 0 {
			for w := range targetZ {
				targetZ[w] ^= scratch.z[i][w]
			}
			sign ^= scratch.r[i]
		}
	}
	// targetZ must now be zero (Z_q is in the group since nothing
	// anticommutes with it on a full-rank tableau).
	return int(sign), true
}

func rowIsZero(s *State, i int) bool {
	for w := range s.x[i] {
		if s.x[i][w] != 0 || s.z[i][w] != 0 {
			return false
		}
	}
	return true
}

func anyX(s *State, i int) bool {
	for _, w := range s.x[i] {
		if w != 0 {
			return true
		}
	}
	return false
}

func leadingZ(s *State, i int) int {
	for q := 0; q < s.n; q++ {
		if s.getZ(i, q) {
			return q
		}
	}
	return -1
}

// MeasureAll measures every qubit in order and returns the resulting
// bitstring (bit q of the result is qubit q's outcome). The state collapses.
func (s *State) MeasureAll(rng *rand.Rand) uint64 {
	var out uint64
	for q := 0; q < s.n; q++ {
		bit, _ := s.MeasureZ(q, rng)
		if bit == 1 {
			out |= 1 << uint(q)
		}
	}
	return out
}
