// Cross-validation of the tableau against the exact statevector. This file
// lives in an external test package because sim now imports stab (the
// engine's stabilizer backend), so in-package stab tests cannot import sim.
package stab_test

import (
	"math"
	"math/rand"
	"testing"

	"trios/internal/circuit"
	"trios/internal/sim"
	"trios/internal/stab"
)

// pauliExpectation computes <psi|P|psi> for a Pauli string on a statevector.
func pauliExpectation(t *testing.T, psi *sim.State, xs, zs []bool, sign uint8) float64 {
	t.Helper()
	phi := psi.Copy()
	// Apply Z then X per qubit (order matters only up to global phase
	// consistent with the tableau's convention: generator = i^0 * prod
	// X^x Z^z per qubit... use Y where both).
	for q := range xs {
		switch {
		case xs[q] && zs[q]:
			if err := phi.ApplyGate(circuit.NewGate(circuit.Y, []int{q})); err != nil {
				t.Fatal(err)
			}
		case xs[q]:
			if err := phi.ApplyGate(circuit.NewGate(circuit.X, []int{q})); err != nil {
				t.Fatal(err)
			}
		case zs[q]:
			if err := phi.ApplyGate(circuit.NewGate(circuit.Z, []int{q})); err != nil {
				t.Fatal(err)
			}
		}
	}
	ip := real(psi.InnerProduct(phi))
	if sign == 1 {
		ip = -ip
	}
	return ip
}

// TestAgainstStatevector cross-validates the tableau against the exact
// statevector: after a random Clifford circuit, every stabilizer generator
// must have expectation +1 on the statevector.
func TestAgainstStatevector(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 4
		c := randomCliffordExt(rng, n, 30)
		st := stab.NewState(n)
		if err := st.ApplyCircuit(c); err != nil {
			t.Fatal(err)
		}
		psi := sim.NewState(n)
		if err := psi.ApplyCircuit(c); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			xs, zs, sign := st.Generator(i)
			exp := pauliExpectation(t, psi, xs, zs, sign)
			if math.Abs(exp-1) > 1e-9 {
				t.Fatalf("trial %d generator %d: expectation %v (stabilizers %v)\ncircuit:\n%v",
					trial, i, exp, st.Stabilizers(), c)
			}
		}
	}
}

// TestCliffordUGates verifies the u-gate recognition against statevector.
func TestCliffordUGates(t *testing.T) {
	pi := math.Pi
	cases := []*circuit.Circuit{
		circuit.New(1).U1(pi/2, 0),
		circuit.New(1).U1(-pi/2, 0),
		circuit.New(1).U1(pi, 0),
		circuit.New(1).U2(0, pi, 0), // H
		circuit.New(1).U2(pi/2, pi/2, 0),
		circuit.New(1).U3(pi, 0, pi, 0), // X
		circuit.New(1).U3(pi/2, -pi/2, pi/2, 0),
		circuit.New(1).U3(pi, pi/2, pi/2, 0), // Y
	}
	for ci, c := range cases {
		full := circuit.New(2)
		full.H(0).CX(0, 1) // entangle so phases matter
		full.AppendCircuit(c)
		st := stab.NewState(2)
		if err := st.ApplyCircuit(full); err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		psi := sim.NewState(2)
		if err := psi.ApplyCircuit(full); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			xs, zs, sign := st.Generator(i)
			if exp := pauliExpectation(t, psi, xs, zs, sign); math.Abs(exp-1) > 1e-9 {
				t.Fatalf("case %d generator %d: expectation %v", ci, i, exp)
			}
		}
	}
}

// TestExtendedCliffordGatesAgainstStatevector cross-validates the gate set
// added for the engine's dispatch (SX/SXdg, quarter-angle RX/RY/RZ, CP at
// multiples of pi) against the statevector the same way.
func TestExtendedCliffordGatesAgainstStatevector(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		const n = 3
		c := circuit.New(n)
		for i := 0; i < 25; i++ {
			switch rng.Intn(7) {
			case 0:
				c.SX(rng.Intn(n))
			case 1:
				c.SXdg(rng.Intn(n))
			case 2:
				c.RX(float64(rng.Intn(5)-2)*math.Pi/2, rng.Intn(n))
			case 3:
				c.RY(float64(rng.Intn(5)-2)*math.Pi/2, rng.Intn(n))
			case 4:
				c.RZ(float64(rng.Intn(5)-2)*math.Pi/2, rng.Intn(n))
			case 5:
				c.CP(float64(rng.Intn(3)-1)*math.Pi, rng.Intn(n-1)+1, 0)
			case 6:
				p := rng.Perm(n)
				c.CX(p[0], p[1])
			}
		}
		st := stab.NewState(n)
		if err := st.ApplyCircuit(c); err != nil {
			t.Fatal(err)
		}
		psi := sim.NewState(n)
		if err := psi.ApplyCircuit(c); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			xs, zs, sign := st.Generator(i)
			if exp := pauliExpectation(t, psi, xs, zs, sign); math.Abs(exp-1) > 1e-9 {
				t.Fatalf("trial %d generator %d: expectation %v\ncircuit:\n%v", trial, i, exp, c)
			}
		}
	}
}

func randomCliffordExt(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(6) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.S(rng.Intn(n))
		case 2:
			c.X(rng.Intn(n))
		case 3:
			c.Z(rng.Intn(n))
		case 4:
			p := rng.Perm(n)
			c.CX(p[0], p[1])
		default:
			p := rng.Perm(n)
			c.CZ(p[0], p[1])
		}
	}
	return c
}
