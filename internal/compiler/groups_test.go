package compiler

import (
	"math/rand"
	"testing"

	"trios/internal/circuit"
	"trios/internal/topo"
)

func TestGroupsPipelineSingleMCX(t *testing.T) {
	g := topo.Grid(2, 4)
	c := circuit.New(5)
	c.MCX([]int{0, 1, 2, 3}, 4)
	res, err := Compile(c, g, Options{Pipeline: GroupsPipeline, Placement: PlaceGreedy, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	verifyCompiled(t, res)
}

func TestGroupsPipelineRandomCircuits(t *testing.T) {
	graphs := []*topo.Graph{topo.Line(8), topo.Grid(2, 4), topo.Ring(8)}
	rng := rand.New(rand.NewSource(31))
	for _, g := range graphs {
		for trial := 0; trial < 3; trial++ {
			c := circuit.New(g.NumQubits())
			for i := 0; i < 8; i++ {
				p := rng.Perm(g.NumQubits())
				switch rng.Intn(4) {
				case 0:
					c.MCX(p[:3], p[3])
				case 1:
					c.CCX(p[0], p[1], p[2])
				case 2:
					c.CX(p[0], p[1])
				default:
					c.H(p[0])
				}
			}
			res, err := Compile(c, g, Options{Pipeline: GroupsPipeline, Seed: int64(trial)})
			if err != nil {
				t.Fatalf("%s: %v", g.Name(), err)
			}
			verifyCompiled(t, res)
		}
	}
}

// TestGroupsVersusTriosOnCnX compares the experimental any-arity pipeline
// with the standard Trios pipeline on a large CnX. The paper conjectures
// routing >3 qubits simultaneously may pay off only at larger scales; the
// test documents that both compile correctly and reports no required
// winner, only that Groups stays within a reasonable factor.
func TestGroupsVersusTriosOnCnX(t *testing.T) {
	g := topo.Johannesburg()
	c := circuit.New(11)
	c.MCX([]int{0, 1, 2, 3, 4, 5}, 10) // 6 controls, dirty wires 6..9 free
	trios, err := Compile(c, g, Options{Pipeline: TriosPipeline, Placement: PlaceGreedy, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := Compile(c, g, Options{Pipeline: GroupsPipeline, Placement: PlaceGreedy, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := trios.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := groups.Verify(); err != nil {
		t.Fatal(err)
	}
	tq, gq := trios.TwoQubitGates(), groups.TwoQubitGates()
	t.Logf("C6X on johannesburg: trios %d two-qubit gates, groups %d", tq, gq)
	if gq > 3*tq {
		t.Errorf("groups pipeline wildly worse: %d vs %d", gq, tq)
	}
}
