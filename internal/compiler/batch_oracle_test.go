package compiler

import (
	"context"
	"testing"

	"trios/internal/topo"
)

// TestBatchSharedDeviceOracle runs a high-worker batch where every job
// shares one freshly constructed Graph per device — the batch warms each
// device's distance oracle exactly once and the workers then query it
// concurrently (exercised under -race via make race) — and asserts the
// results are bit-identical to compiling each job against its own private
// Graph instance, i.e. oracle sharing is invisible to outputs.
func TestBatchSharedDeviceOracle(t *testing.T) {
	jobs := batchTestJobs(t)
	rs, err := (&Batch{Workers: 8}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range rs {
		if jr.Err != nil {
			t.Fatalf("job %s: %v", jobs[i].ID, jr.Err)
		}
		// Private graph: same shape, separate oracle build.
		private, err := topo.ByName(jobs[i].Graph.Name())
		if err != nil {
			t.Fatalf("job %s: %v", jobs[i].ID, err)
		}
		want, err := Compile(jobs[i].Input, private, jobs[i].Opts)
		if err != nil {
			t.Fatalf("job %s: %v", jobs[i].ID, err)
		}
		sameResult(t, jobs[i].ID, jr.Result, want)
	}
}
