// Streaming facade: StreamCompile runs the windowed bounded-memory pipeline
// (internal/stream) under the compiler's option vocabulary, threading the
// same cost model, distance oracle, and per-pass metric reporting the
// monolithic path uses. The monolithic Compile stays the golden arm:
// with Optimize off the streamed output is byte-identical to
// qasm.Emit(Compile(...).Physical) for any window size, and with Optimize
// on it is simulation-equivalent (per-window saturation differs from
// global saturation).
package compiler

import (
	"context"
	"fmt"
	"io"

	"trios/internal/circuit"
	"trios/internal/layout"
	"trios/internal/obs"
	"trios/internal/stream"
	"trios/internal/topo"
)

// StreamOptions configures a streaming compile: the standard Options plus
// the windowing knobs.
type StreamOptions struct {
	Options
	// Window is the gate-window size (stream.DefaultWindow when zero).
	Window int
	// Parallel runs the pipeline stages as a channel-connected worker
	// chain; output is bit-identical to the serial driver.
	Parallel bool
}

// StreamResult summarizes a streaming compile. It mirrors Result's mapping
// and metric fields but carries no circuits: the program went to the output
// writer, window by window.
type StreamResult struct {
	// InputQubits is the declared input register; NumQubits the device
	// register of the emitted program.
	InputQubits  int
	NumQubits    int
	InputGates   int
	EmittedGates int
	Windows      int
	SwapsAdded   int
	Initial      []int
	Final        []int
	// ScheduledDuration is the ASAP makespan (us) of the emitted program,
	// accumulated incrementally across windows.
	ScheduledDuration float64
	// Passes aggregates each streaming stage across all windows.
	Passes []PassMetric
	// CostModel names the cost model that drove layout and routing.
	CostModel string
}

// StreamCompile compiles QASM from src to dst in bounded gate windows.
// Restrictions vs Compile: only the Conventional and Trios pipelines with
// the direct router are streamable (stochastic/lookahead routing and group
// clustering are layer-based and need the whole circuit); templates are
// bypassed (fragment matching needs the whole input); no fidelity estimate
// is computed (it is a whole-circuit property). Greedy placement sees only
// the first window's interaction graph. Per-window trace spans are
// recorded under the span in ctx, if any.
func StreamCompile(ctx context.Context, src io.Reader, dst io.Writer, g *topo.Graph, opts StreamOptions) (*StreamResult, error) {
	if opts.Pipeline != Conventional && opts.Pipeline != TriosPipeline {
		return nil, fmt.Errorf("compiler: pipeline %v is not streamable; use Compile", opts.Pipeline)
	}
	if opts.Router != RouteDirect {
		return nil, fmt.Errorf("compiler: router %v is not streamable (layer-based routers need the whole circuit); use Compile", opts.Router)
	}
	cm, err := opts.costModel()
	if err != nil {
		return nil, err
	}
	if opts.Calibration != nil {
		if err := opts.Calibration.CheckGraph(g); err != nil {
			return nil, err
		}
	}
	weight, oracle := routerWeights(cm, g)
	cfg := stream.Config{
		Graph:           g,
		TrioAware:       opts.Pipeline == TriosPipeline,
		Mode:            opts.Mode,
		Seed:            opts.Seed,
		Optimize:        opts.Optimize,
		LegacyOptimizer: opts.Optimizer == OptimizerLegacy,
		Weight:          weight,
		Oracle:          oracle,
		Window:          opts.Window,
		Parallel:        opts.Parallel,
		Span:            obs.SpanFromContext(ctx),
		Place: func(first *circuit.Circuit) (*layout.Layout, error) {
			return initialLayout(first, g, opts.Options, cm)
		},
	}
	res, err := stream.Compile(ctx, src, dst, cfg)
	if err != nil {
		return nil, err
	}
	out := &StreamResult{
		InputQubits:       res.InputQubits,
		NumQubits:         res.NumQubits,
		InputGates:        res.InputGates,
		EmittedGates:      res.EmittedGates,
		Windows:           res.Windows,
		SwapsAdded:        res.SwapsAdded,
		Initial:           res.Initial,
		Final:             res.Final,
		ScheduledDuration: res.ScheduledDuration,
		CostModel:         cm.Name(),
	}
	for _, m := range res.Stages {
		out.Passes = append(out.Passes, PassMetric{
			Pass:           m.Stage,
			Duration:       m.Duration,
			GatesBefore:    m.GatesIn,
			GatesAfter:     m.GatesOut,
			TwoQubitBefore: -1, // not tracked per stream stage
			TwoQubitAfter:  -1,
		})
	}
	return out, nil
}
