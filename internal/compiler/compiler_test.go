package compiler

import (
	"math/rand"
	"testing"

	"trios/internal/circuit"
	"trios/internal/decompose"
	"trios/internal/sim"
	"trios/internal/topo"
)

// verifyCompiled checks hardware legality and semantic equivalence (on
// small devices) of a compile result.
func verifyCompiled(t *testing.T, res *Result) {
	t.Helper()
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumQubits() > 12 {
		return
	}
	n := res.Input.NumQubits
	ok, err := sim.CompiledEquivalent(res.Input, res.Physical, res.Graph.NumQubits(),
		res.Initial[:n], res.Final[:n], 3, 999)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("compiled circuit not equivalent to input")
	}
}

func TestConventionalSingleToffoli(t *testing.T) {
	g := topo.Line(8)
	c := circuit.New(3)
	c.CCX(0, 1, 2)
	res, err := Compile(c, g, Options{Pipeline: Conventional})
	if err != nil {
		t.Fatal(err)
	}
	verifyCompiled(t, res)
}

func TestTriosSingleToffoli(t *testing.T) {
	g := topo.Line(8)
	c := circuit.New(3)
	c.CCX(0, 1, 2)
	res, err := Compile(c, g, Options{Pipeline: TriosPipeline})
	if err != nil {
		t.Fatal(err)
	}
	verifyCompiled(t, res)
	// On a line with the trio already adjacent, trios+8-CNOT should need
	// exactly 8 CNOTs and no SWAPs.
	if res.SwapsAdded != 0 {
		t.Errorf("swaps = %d, want 0", res.SwapsAdded)
	}
	if got := res.TwoQubitGates(); got != 8 {
		t.Errorf("two-qubit gates = %d, want 8", got)
	}
}

func TestTriosBeatsBaselineOnDistantToffoli(t *testing.T) {
	// The core claim (Figs. 1, 7): on a distant trio the Trios pipeline
	// produces fewer two-qubit gates than the conventional one.
	g := topo.Johannesburg()
	c := circuit.New(3)
	c.CCX(0, 1, 2)
	init := []int{6, 17, 3} // paper's worst-case triple, distance 10

	base, err := Compile(c, g, Options{Pipeline: Conventional, InitialLayout: init, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	trios, err := Compile(c, g, Options{Pipeline: TriosPipeline, InitialLayout: init, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := trios.Verify(); err != nil {
		t.Fatal(err)
	}
	if trios.TwoQubitGates() >= base.TwoQubitGates() {
		t.Errorf("trios %d two-qubit gates, baseline %d: trios should win",
			trios.TwoQubitGates(), base.TwoQubitGates())
	}
	if trios.SwapsAdded >= base.SwapsAdded {
		t.Errorf("trios %d swaps, baseline %d: trios should add fewer",
			trios.SwapsAdded, base.SwapsAdded)
	}
}

func TestAllFourPaperConfigurations(t *testing.T) {
	// Fig. 6/7 compare: Qiskit(6), Qiskit(8), Trios(6), Trios(8).
	g := topo.Line(10)
	c := circuit.New(3)
	c.CCX(0, 1, 2)
	init := []int{0, 4, 9}
	configs := []Options{
		{Pipeline: Conventional, Mode: decompose.Six, InitialLayout: init},
		{Pipeline: Conventional, Mode: decompose.Eight, InitialLayout: init},
		{Pipeline: TriosPipeline, Mode: decompose.Six, InitialLayout: init},
		{Pipeline: TriosPipeline, Mode: decompose.Eight, InitialLayout: init},
	}
	for i, opt := range configs {
		res, err := Compile(c, g, opt)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		verifyCompiled(t, res)
	}
}

func TestTriosSixFixupRouting(t *testing.T) {
	// Forcing the 6-CNOT decomposition on a line leaves one non-adjacent
	// CNOT pair, which the fixup pass must route; result stays correct.
	g := topo.Line(6)
	c := circuit.New(3)
	c.CCX(0, 1, 2)
	res, err := Compile(c, g, Options{Pipeline: TriosPipeline, Mode: decompose.Six})
	if err != nil {
		t.Fatal(err)
	}
	verifyCompiled(t, res)
	if res.SwapsAdded == 0 {
		t.Error("6-CNOT on a line should have needed fixup swaps")
	}
}

func TestRandomCircuitsBothPipelines(t *testing.T) {
	graphs := []*topo.Graph{topo.Line(6), topo.Grid(2, 3), topo.Ring(6), topo.Clusters(2, 3)}
	rng := rand.New(rand.NewSource(17))
	for _, g := range graphs {
		for trial := 0; trial < 3; trial++ {
			c := randomCircuit(rng, g.NumQubits(), 15)
			for _, pipe := range []Pipeline{Conventional, TriosPipeline} {
				res, err := Compile(c, g, Options{Pipeline: pipe, Seed: int64(trial), Placement: PlaceGreedy})
				if err != nil {
					t.Fatalf("%s/%v: %v", g.Name(), pipe, err)
				}
				verifyCompiled(t, res)
			}
		}
	}
}

func TestCompileRejectsOversizedCircuit(t *testing.T) {
	g := topo.Line(3)
	c := circuit.New(5)
	if _, err := Compile(c, g, Options{}); err == nil {
		t.Error("expected size error")
	}
}

func TestInitialLayoutValidation(t *testing.T) {
	g := topo.Line(4)
	c := circuit.New(2)
	c.CX(0, 1)
	if _, err := Compile(c, g, Options{InitialLayout: []int{0, 0}}); err == nil {
		t.Error("expected duplicate placement error")
	}
	if _, err := Compile(c, g, Options{InitialLayout: []int{0, 9}}); err == nil {
		t.Error("expected out-of-range placement error")
	}
}

func TestPlacementStrategies(t *testing.T) {
	g := topo.Grid(2, 3)
	c := circuit.New(4)
	c.CCX(0, 1, 2).CX(2, 3)
	for _, p := range []Placement{PlaceIdentity, PlaceGreedy, PlaceRandom} {
		res, err := Compile(c, g, Options{Pipeline: TriosPipeline, Placement: p, Seed: 3})
		if err != nil {
			t.Fatalf("placement %d: %v", int(p), err)
		}
		verifyCompiled(t, res)
	}
}

func TestNoToffoliCircuitSameForBothPipelines(t *testing.T) {
	// §4: on Toffoli-free programs Trios has no effect. With the same seed
	// and placement the two pipelines route identically.
	g := topo.Johannesburg()
	c := circuit.New(20)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 15; i++ {
		a, b := rng.Intn(20), rng.Intn(19)
		if b >= a {
			b++
		}
		c.CX(a, b)
	}
	base, err := Compile(c, g, Options{Pipeline: Conventional, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	trios, err := Compile(c, g, Options{Pipeline: TriosPipeline, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if base.TwoQubitGates() != trios.TwoQubitGates() {
		t.Errorf("toffoli-free circuit: baseline %d vs trios %d two-qubit gates",
			base.TwoQubitGates(), trios.TwoQubitGates())
	}
}

func TestMeasuresSurviveCompilation(t *testing.T) {
	g := topo.Line(5)
	c := circuit.New(3)
	c.CCX(0, 1, 2).Measure(0).Measure(1).Measure(2)
	res, err := Compile(c, g, Options{Pipeline: TriosPipeline})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Physical.CountName(circuit.Measure); got != 3 {
		t.Errorf("measures = %d, want 3", got)
	}
}

func TestNoiseAwareCompilation(t *testing.T) {
	g := topo.Grid(2, 3)
	weight := func(a, b int) float64 { return 1 }
	c := circuit.New(3)
	c.CCX(0, 1, 2)
	res, err := Compile(c, g, Options{Pipeline: TriosPipeline, NoiseWeight: weight})
	if err != nil {
		t.Fatal(err)
	}
	verifyCompiled(t, res)
}

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(5) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.T(rng.Intn(n))
		case 2:
			c.RZ(rng.Float64()*6, rng.Intn(n))
		case 3:
			p := rng.Perm(n)
			c.CX(p[0], p[1])
		default:
			p := rng.Perm(n)
			c.CCX(p[0], p[1], p[2])
		}
	}
	return c
}
