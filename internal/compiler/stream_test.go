package compiler

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"trios/internal/circuit"
	"trios/internal/decompose"
	"trios/internal/qasm"
	"trios/internal/sim"
	"trios/internal/topo"
)

// mixedCircuit builds a deterministic mixed workload (1q rotations, CNOTs,
// Toffolis, barriers, trailing measures) big enough that every tested
// window size actually splits it.
func mixedCircuit(n, gates int, seed int64) *circuit.Circuit {
	return mixedCircuitOpt(n, gates, seed, true)
}

func mixedCircuitOpt(n, gates int, seed int64, measures bool) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for len(c.Gates) < gates-n {
		switch k := rng.Intn(12); {
		case k < 3:
			c.H(rng.Intn(n))
		case k < 5:
			c.RZ(float64(rng.Intn(7)+1)/7.0, rng.Intn(n))
		case k < 6:
			c.T(rng.Intn(n))
		case k < 9:
			q := rng.Perm(n)
			c.CX(q[0], q[1])
		case k < 11:
			q := rng.Perm(n)
			c.CCX(q[0], q[1], q[2])
		default:
			c.Append(circuit.Gate{Name: circuit.Barrier, Qubits: []int{rng.Intn(n)}})
		}
	}
	if measures {
		for q := 0; q < n; q++ {
			c.Measure(q)
		}
	}
	return c
}

// commutingRunCircuit places a long run of mutually commuting gates (CZs
// and RZs on overlapping qubits) so that small windows split the commuting
// region — the optimizer's worst case for windowed divergence.
func commutingRunCircuit(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.H(0)
	c.CX(0, 1)
	for i := 0; i < 150; i++ {
		c.RZ(0.3, i%n)
		c.CZ(i%n, (i+1)%n)
	}
	c.CCX(0, 1, 2)
	for i := 0; i < 30; i++ {
		c.T(i % n)
	}
	return c
}

// streamGolden compiles src both ways and requires byte-identity.
func streamGolden(t *testing.T, src string, g *topo.Graph, opts StreamOptions) *StreamResult {
	t.Helper()
	input, err := qasm.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	mono, err := Compile(input, g, opts.Options)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	want, err := qasm.Emit(mono.Physical)
	if err != nil {
		t.Fatalf("Emit: %v", err)
	}
	var out bytes.Buffer
	res, err := StreamCompile(context.Background(), strings.NewReader(src), &out, g, opts)
	if err != nil {
		t.Fatalf("StreamCompile: %v", err)
	}
	if out.String() != want {
		i := 0
		for i < len(want) && i < out.Len() && want[i] == out.String()[i] {
			i++
		}
		t.Fatalf("streamed output diverges from monolithic at byte %d (window=%d parallel=%v):\n...%q...",
			i, opts.Window, opts.Parallel, clip(want, i))
	}
	if res.SwapsAdded != mono.SwapsAdded {
		t.Fatalf("SwapsAdded %d != monolithic %d", res.SwapsAdded, mono.SwapsAdded)
	}
	if !reflect.DeepEqual(res.Initial, mono.Initial) || !reflect.DeepEqual(res.Final, mono.Final) {
		t.Fatalf("layout handoff diverged: initial %v vs %v, final %v vs %v",
			res.Initial, mono.Initial, res.Final, mono.Final)
	}
	if res.EmittedGates != len(mono.Physical.Gates) {
		t.Fatalf("EmittedGates %d != monolithic %d", res.EmittedGates, len(mono.Physical.Gates))
	}
	return res
}

func clip(s string, i int) string {
	lo, hi := i-40, i+40
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

// TestStreamByteIdenticalAcrossDevices is the window-boundary property
// test with optimization off: for every registry device, window sizes that
// split the circuit at many different boundaries (including mid-commuting-
// region), and both pipeline shapes, the stitched streaming output must be
// byte-identical to the monolithic compile.
func TestStreamByteIdenticalAcrossDevices(t *testing.T) {
	c := mixedCircuit(18, 10000, 11)
	src, err := qasm.Emit(c)
	if err != nil {
		t.Fatalf("Emit: %v", err)
	}
	for _, name := range topo.Names() {
		g, err := topo.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		for _, window := range []int{64, 1024, 8192} {
			opts := StreamOptions{Window: window}
			opts.Pipeline = TriosPipeline
			opts.Seed = 1
			streamGolden(t, src, g, opts)
		}
	}
}

// TestStreamByteIdenticalMatrix drills one device through the full option
// matrix: both pipelines, the Six-mode fixup session, both seeds, serial
// and pipelined drivers, every window size.
func TestStreamByteIdenticalMatrix(t *testing.T) {
	src, err := qasm.Emit(mixedCircuit(18, 10000, 7))
	if err != nil {
		t.Fatalf("Emit: %v", err)
	}
	g := topo.Johannesburg()
	type shape struct {
		pipeline Pipeline
		mode     decompose.ToffoliMode
	}
	shapes := []shape{
		{Conventional, decompose.Auto},
		{TriosPipeline, decompose.Auto},
		{TriosPipeline, decompose.Six},
		{TriosPipeline, decompose.Eight},
	}
	for _, sh := range shapes {
		for _, seed := range []int64{1, 5} {
			for _, window := range []int{64, 1024, 8192} {
				for _, parallel := range []bool{false, true} {
					opts := StreamOptions{Window: window, Parallel: parallel}
					opts.Pipeline = sh.pipeline
					opts.Mode = sh.mode
					opts.Seed = seed
					streamGolden(t, src, g, opts)
				}
			}
		}
	}
}

// TestStreamSplitCommutingRegion pins the nastiest boundary: a window size
// that cuts a long commuting run. Optimize off must stay byte-identical;
// optimize on (where windowed saturation legitimately differs from global
// saturation) must stay simulation-equivalent to the logical input.
func TestStreamSplitCommutingRegion(t *testing.T) {
	logical := commutingRunCircuit(6)
	src, err := qasm.Emit(logical)
	if err != nil {
		t.Fatalf("Emit: %v", err)
	}
	g := topo.Line(8)
	for _, window := range []int{64, 1024} {
		opts := StreamOptions{Window: window}
		opts.Pipeline = TriosPipeline
		opts.Seed = 3
		streamGolden(t, src, g, opts)

		opts.Optimize = true
		var out bytes.Buffer
		res, err := StreamCompile(context.Background(), strings.NewReader(src), &out, g, opts)
		if err != nil {
			t.Fatalf("StreamCompile optimize: %v", err)
		}
		physical, err := qasm.Parse(out.String())
		if err != nil {
			t.Fatalf("parse streamed output: %v", err)
		}
		n := logical.NumQubits
		ok, err := sim.CompiledEquivalent(logical, physical, g.NumQubits(), res.Initial[:n], res.Final[:n], 3, 17)
		if err != nil {
			t.Fatalf("CompiledEquivalent: %v", err)
		}
		if !ok {
			t.Fatalf("optimized streamed output (window=%d) is not equivalent to the logical circuit", window)
		}
	}
}

// TestStreamOptimizedEquivalence checks the optimize-on arm across both
// pipelines and seeds on a mixed circuit: the streamed physical program
// must implement the logical input under its reported initial/final maps.
func TestStreamOptimizedEquivalence(t *testing.T) {
	logical := mixedCircuitOpt(8, 400, 23, false)
	src, err := qasm.Emit(logical)
	if err != nil {
		t.Fatalf("Emit: %v", err)
	}
	g := topo.Grid(3, 3)
	for _, pipeline := range []Pipeline{Conventional, TriosPipeline} {
		for _, seed := range []int64{2, 9} {
			opts := StreamOptions{Window: 64}
			opts.Pipeline = pipeline
			opts.Seed = seed
			opts.Optimize = true
			var out bytes.Buffer
			res, err := StreamCompile(context.Background(), strings.NewReader(src), &out, g, opts)
			if err != nil {
				t.Fatalf("StreamCompile: %v", err)
			}
			physical, err := qasm.Parse(out.String())
			if err != nil {
				t.Fatalf("parse streamed output: %v", err)
			}
			n := logical.NumQubits
			ok, err := sim.CompiledEquivalent(logical, physical, g.NumQubits(), res.Initial[:n], res.Final[:n], 2, 31)
			if err != nil {
				t.Fatalf("CompiledEquivalent: %v", err)
			}
			if !ok {
				t.Fatalf("pipeline=%v seed=%d: optimized streamed output not equivalent", pipeline, seed)
			}
		}
	}
}

// TestStreamGreedyPlacementPinned: greedy placement sees only the first
// window, so full byte-identity holds once the monolithic arm is pinned to
// the placement streaming chose (and unpinned when one window holds the
// whole circuit).
func TestStreamGreedyPlacementPinned(t *testing.T) {
	src, err := qasm.Emit(mixedCircuit(16, 3000, 13))
	if err != nil {
		t.Fatalf("Emit: %v", err)
	}
	g := topo.Grid5x4()

	// One window >= circuit: placement sees everything, unpinned identity.
	one := StreamOptions{Window: 1 << 20}
	one.Pipeline = TriosPipeline
	one.Placement = PlaceGreedy
	one.Seed = 1
	streamGolden(t, src, g, one)

	// Many windows: pin the monolithic arm to streaming's placement.
	var out bytes.Buffer
	opts := StreamOptions{Window: 256}
	opts.Pipeline = TriosPipeline
	opts.Placement = PlaceGreedy
	opts.Seed = 1
	res, err := StreamCompile(context.Background(), strings.NewReader(src), &out, g, opts)
	if err != nil {
		t.Fatalf("StreamCompile: %v", err)
	}
	input, err := qasm.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	pinned := opts.Options
	pinned.Placement = PlaceIdentity
	pinned.InitialLayout = res.Initial
	mono, err := Compile(input, g, pinned)
	if err != nil {
		t.Fatalf("Compile pinned: %v", err)
	}
	want, err := qasm.Emit(mono.Physical)
	if err != nil {
		t.Fatalf("Emit: %v", err)
	}
	if out.String() != want {
		t.Fatal("windowed greedy compile diverged from the pinned monolithic compile")
	}
}

// TestStreamRejectsUnstreamable locks the facade's scope: group routing
// and layer-based routers need the whole circuit and must be refused.
func TestStreamRejectsUnstreamable(t *testing.T) {
	g := topo.Line(4)
	src := "qreg q[2];\ncx q[0], q[1];\n"
	bad := []StreamOptions{
		func() StreamOptions { o := StreamOptions{}; o.Pipeline = GroupsPipeline; return o }(),
		func() StreamOptions { o := StreamOptions{}; o.Router = RouteStochastic; return o }(),
		func() StreamOptions { o := StreamOptions{}; o.Router = RouteLookahead; return o }(),
	}
	for _, opts := range bad {
		if _, err := StreamCompile(context.Background(), strings.NewReader(src), &bytes.Buffer{}, g, opts); err == nil {
			t.Fatalf("StreamCompile accepted unstreamable options %+v", opts)
		}
	}
}

// TestStreamRejectsRegisterGrowth: strict register bounds are a streaming
// precondition (later growth would retroactively change early windows).
func TestStreamRejectsRegisterGrowth(t *testing.T) {
	src := "qreg q[2];\nh q[0];\nh q[7];\n"
	opts := StreamOptions{Window: 1}
	if _, err := StreamCompile(context.Background(), strings.NewReader(src), &bytes.Buffer{}, topo.Line(10), opts); err == nil {
		t.Fatal("StreamCompile accepted a register-growing stream")
	} else if !strings.Contains(err.Error(), "strict register bounds") {
		t.Fatalf("unexpected error: %v", err)
	}
}
