package compiler

import (
	"context"
	"testing"

	"trios/internal/benchmarks"
	"trios/internal/topo"
)

func benchCompile(b *testing.B, pipe Pipeline, router RouterKind) {
	b.Helper()
	grover, err := benchmarks.Grover(6)
	if err != nil {
		b.Fatal(err)
	}
	g := topo.Johannesburg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Compile(grover, g, Options{
			Pipeline:  pipe,
			Router:    router,
			Placement: PlaceGreedy,
			Seed:      int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.TwoQubitGates()), "two-qubit-gates")
		}
	}
}

func BenchmarkCompileGroverBaseline(b *testing.B)   { benchCompile(b, Conventional, RouteDirect) }
func BenchmarkCompileGroverTrios(b *testing.B)      { benchCompile(b, TriosPipeline, RouteDirect) }
func BenchmarkCompileGroverStochastic(b *testing.B) { benchCompile(b, Conventional, RouteStochastic) }

// benchBatch drains a (benchmark x topology x pipeline x seed) grid through
// the batch engine with the given worker count.
func benchBatch(b *testing.B, workers int) {
	b.Helper()
	grover, err := benchmarks.Grover(6)
	if err != nil {
		b.Fatal(err)
	}
	var jobs []Job
	for _, g := range topo.PaperTopologies() {
		for _, pipe := range []Pipeline{Conventional, TriosPipeline} {
			for seed := int64(0); seed < 4; seed++ {
				jobs = append(jobs, Job{
					Input: grover, Graph: g,
					Opts: Options{Pipeline: pipe, Placement: PlaceGreedy, Seed: seed},
				})
			}
		}
	}
	engine := &Batch{Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := engine.Run(context.Background(), jobs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Results(rs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs")
}

func BenchmarkBatchGroverSerial(b *testing.B)   { benchBatch(b, 1) }
func BenchmarkBatchGroverParallel(b *testing.B) { benchBatch(b, 0) }
