package compiler

import (
	"testing"

	"trios/internal/benchmarks"
	"trios/internal/topo"
)

func benchCompile(b *testing.B, pipe Pipeline, router RouterKind) {
	b.Helper()
	grover, err := benchmarks.Grover(6)
	if err != nil {
		b.Fatal(err)
	}
	g := topo.Johannesburg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Compile(grover, g, Options{
			Pipeline:  pipe,
			Router:    router,
			Placement: PlaceGreedy,
			Seed:      int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.TwoQubitGates()), "two-qubit-gates")
		}
	}
}

func BenchmarkCompileGroverBaseline(b *testing.B)   { benchCompile(b, Conventional, RouteDirect) }
func BenchmarkCompileGroverTrios(b *testing.B)      { benchCompile(b, TriosPipeline, RouteDirect) }
func BenchmarkCompileGroverStochastic(b *testing.B) { benchCompile(b, Conventional, RouteStochastic) }
