package compiler

import (
	"math"
	"testing"

	"trios/internal/benchmarks"
	"trios/internal/device"
	"trios/internal/noise"
	"trios/internal/qasm"
	"trios/internal/sched"
	"trios/internal/topo"
)

// TestCalibrationEndToEnd is the satellite end-to-end check: one Calibration
// drives layout, routing, and scheduling, and the pipeline's fidelity block
// must match the noise package's closed form evaluated independently on the
// compiled circuit — on real (small) benchmarks, for both pipelines.
func TestCalibrationEndToEnd(t *testing.T) {
	cal, err := device.ByName("johannesburg-0819")
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Johannesburg()
	for _, bench := range []string{"cnx_inplace-4", "incrementer_borrowedbit-5"} {
		b, err := benchmarks.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		input, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, pipe := range []Pipeline{Conventional, TriosPipeline} {
			res, err := Compile(input, g, Options{
				Pipeline:    pipe,
				Placement:   PlaceGreedy,
				Calibration: cal,
				Seed:        1,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", bench, pipe, err)
			}
			if err := res.Verify(); err != nil {
				t.Fatal(err)
			}
			if res.CostModel != "noise:johannesburg-0819" {
				t.Errorf("%s/%v: cost model %q", bench, pipe, res.CostModel)
			}
			// The fidelity block must match the closed form exactly.
			wantP, wantD, err := noise.SuccessWithCalibration(res.Physical, cal, noise.CoherencePerQubit)
			if err != nil {
				t.Fatal(err)
			}
			if res.EstimatedSuccess != wantP {
				t.Errorf("%s/%v: EstimatedSuccess %v != closed form %v", bench, pipe, res.EstimatedSuccess, wantP)
			}
			if res.Makespan != wantD {
				t.Errorf("%s/%v: Makespan %v != closed form %v", bench, pipe, res.Makespan, wantD)
			}
			// And the makespan is the ASAP schedule under the calibration's
			// own gate times — sched reads the same data.
			d, err := sched.Duration(res.Physical, cal.Times)
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan != d {
				t.Errorf("%s/%v: Makespan %v != sched %v", bench, pipe, res.Makespan, d)
			}
			if res.EstimatedSuccess <= 0 || res.EstimatedSuccess >= 1 {
				t.Errorf("%s/%v: implausible success estimate %v", bench, pipe, res.EstimatedSuccess)
			}
		}
	}
}

// TestUniformCostModelByteIdentical is the acceptance pin: compiling with a
// calibration under the Uniform cost model must produce byte-identical QASM
// and identical layouts to a calibration-less compile, across a grid of
// benchmarks, devices, pipelines, and routers — the calibration then only
// adds the fidelity stats block.
func TestUniformCostModelByteIdentical(t *testing.T) {
	cal, err := device.ByName("johannesburg-0819")
	if err != nil {
		t.Fatal(err)
	}
	b, err := benchmarks.ByName("cnx_inplace-4")
	if err != nil {
		t.Fatal(err)
	}
	input, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Johannesburg()
	for _, pipe := range []Pipeline{Conventional, TriosPipeline, GroupsPipeline} {
		for _, router := range []RouterKind{RouteDirect, RouteStochastic, RouteLookahead} {
			opts := Options{Pipeline: pipe, Router: router, Placement: PlaceGreedy, Seed: 7}
			plain, err := Compile(input, g, opts)
			if err != nil {
				t.Fatalf("%v/%v: %v", pipe, router, err)
			}
			withCal := opts
			withCal.Calibration = cal
			withCal.CostModel = device.Uniform{}
			calibrated, err := Compile(input, g, withCal)
			if err != nil {
				t.Fatalf("%v/%v: %v", pipe, router, err)
			}
			a, err := qasm.Emit(plain.Physical)
			if err != nil {
				t.Fatal(err)
			}
			bq, err := qasm.Emit(calibrated.Physical)
			if err != nil {
				t.Fatal(err)
			}
			if a != bq {
				t.Errorf("%v/%v: Uniform cost model changed the compiled QASM", pipe, router)
			}
			for v := range plain.Initial {
				if plain.Initial[v] != calibrated.Initial[v] || plain.Final[v] != calibrated.Final[v] {
					t.Fatalf("%v/%v: Uniform cost model changed the layout", pipe, router)
				}
			}
			if calibrated.EstimatedSuccess <= 0 || calibrated.Makespan <= 0 {
				t.Errorf("%v/%v: fidelity block missing under Uniform+calibration", pipe, router)
			}
			if plain.EstimatedSuccess != 0 || plain.Makespan != 0 {
				t.Errorf("%v/%v: fidelity block present without a calibration", pipe, router)
			}
			if plain.CostModel != "uniform" || calibrated.CostModel != "uniform" {
				t.Errorf("%v/%v: cost model names %q/%q", pipe, router, plain.CostModel, calibrated.CostModel)
			}
		}
	}
}

// TestNoiseCostModelBeatsUniformOnCalibration: under the varied registry
// calibration, noise-aware compilation of a small benchmark must estimate at
// least as much success as the Uniform control arm (and the two must differ
// in routing for the comparison to mean anything).
func TestNoiseCostModelBeatsUniformOnCalibration(t *testing.T) {
	cal, err := device.ByName("johannesburg-0819")
	if err != nil {
		t.Fatal(err)
	}
	b, err := benchmarks.ByName("cnx_inplace-4")
	if err != nil {
		t.Fatal(err)
	}
	input, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Johannesburg()
	uniform, err := Compile(input, g, Options{
		Pipeline: TriosPipeline, Placement: PlaceGreedy, Seed: 1,
		Calibration: cal, CostModel: device.Uniform{},
	})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Compile(input, g, Options{
		Pipeline: TriosPipeline, Placement: PlaceGreedy, Seed: 1,
		Calibration: cal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if aware.EstimatedSuccess < uniform.EstimatedSuccess {
		t.Errorf("noise-aware success %v < uniform %v", aware.EstimatedSuccess, uniform.EstimatedSuccess)
	}
}

// TestCacheKeySeparatesCalibrationsAndCostModels pins the serving-layer
// correctness requirement: keys must distinguish (no calibration), (uniform
// + calibration), and (noise + calibration), and track calibration content.
func TestCacheKeySeparatesCalibrationsAndCostModels(t *testing.T) {
	cal, err := device.ByName("johannesburg-0819")
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Pipeline: TriosPipeline, Seed: 1}
	k0, err := base.CacheKey()
	if err != nil {
		t.Fatal(err)
	}

	uni := base
	uni.Calibration = cal
	uni.CostModel = device.Uniform{}
	k1, err := uni.CacheKey()
	if err != nil {
		t.Fatal(err)
	}

	aware := base
	aware.Calibration = cal
	k2, err := aware.CacheKey()
	if err != nil {
		t.Fatal(err)
	}

	other := base
	other.Calibration = cal.Clone()
	other.Calibration.SetEdgeError(0, 1, 0.3)
	k3, err := other.CacheKey()
	if err != nil {
		t.Fatal(err)
	}

	keys := map[string]string{"plain": k0, "uniform+cal": k1, "noise+cal": k2, "noise+other-cal": k3}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("cache key collision between %s and %s", name, prev)
		}
		seen[k] = name
	}

	// Equal calibration content (distinct pointer) shares a key.
	clone := base
	clone.Calibration = cal.Clone()
	k4, err := clone.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if k4 != k2 {
		t.Error("equal calibration content should share a cache key")
	}
}

// TestCalibrationMismatchRejected: compiling for a device the calibration
// does not cover must fail up front, not deep inside a routing pass.
func TestCalibrationMismatchRejected(t *testing.T) {
	cal, err := device.ByName("johannesburg-0819")
	if err != nil {
		t.Fatal(err)
	}
	b, err := benchmarks.ByName("cnx_inplace-4")
	if err != nil {
		t.Fatal(err)
	}
	input, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(input, topo.Grid5x4(), Options{Calibration: cal}); err == nil {
		t.Error("calibration/device mismatch accepted")
	}
	if _, err := Compile(input, topo.Grid5x4(), Options{CostModel: device.NoiseFor(cal)}); err == nil {
		t.Error("cost-model/device mismatch accepted")
	}
}

// TestSharedNoiseModelMemoizesOracle: two compilations naming the same
// registry calibration share one weighted oracle per graph.
func TestSharedNoiseModelMemoizesOracle(t *testing.T) {
	cal, err := device.ByName("johannesburg-0819")
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Johannesburg()
	o1 := device.NoiseFor(cal).Oracle(g)
	o2 := device.NoiseFor(cal).Oracle(g)
	if o1 != o2 {
		t.Fatal("NoiseFor does not share oracles across calls")
	}
	if math.IsInf(o1.Dist(0, 19), 1) {
		t.Fatal("oracle thinks the device is disconnected")
	}
}
