package compiler

import (
	"math"
	"testing"

	"trios/internal/circuit"
	"trios/internal/noise"
	"trios/internal/sim"
	"trios/internal/topo"
)

// TestClosedFormAgainstMonteCarlo cross-validates the experiment
// methodology end to end: compile a Toffoli circuit, estimate its success
// with the paper's closed-form model (gate errors only), and compare with
// trajectory-level Monte-Carlo error injection on the compiled circuit.
// The closed form counts any error event as failure, so it must lower-bound
// the Monte Carlo within sampling error, and track it closely at small
// error rates.
func TestClosedFormAgainstMonteCarlo(t *testing.T) {
	g := topo.Line(8)
	src := circuit.New(3)
	src.X(0)
	src.X(1)
	src.CCX(0, 1, 2)
	res, err := Compile(src, g, Options{
		Pipeline:      TriosPipeline,
		InitialLayout: []int{0, 3, 6},
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Closed form with effectively-disabled decoherence and readout so both
	// models charge exactly the per-gate error terms.
	model := noise.Params{
		T1: 1e12, T2: 1e12,
		Times:         noise.Johannesburg0819().Times,
		OneQubitError: 0.001,
		TwoQubitError: 0.01,
	}
	analytic, err := noise.SuccessProbability(res.Physical, model)
	if err != nil {
		t.Fatal(err)
	}

	// Monte Carlo on the compiled circuit. The Pauli model charges each
	// *operand* of a two-qubit gate independently, so its per-gate
	// error is 1-(1-e)^2; halve the rate to match the closed form's
	// per-gate accounting.
	pn := sim.PauliNoise{
		OneQubitError: 0.001,
		TwoQubitError: 1 - math.Sqrt(1-0.01),
	}
	expect := uint64(0)
	var mask uint64
	for v := 0; v < 3; v++ {
		mask |= 1 << uint(res.Final[v])
	}
	// |110> in -> |111| out at the final physical positions.
	for v := 0; v < 3; v++ {
		expect |= 1 << uint(res.Final[v])
	}
	mc, err := sim.MonteCarloSuccess(res.Physical, pn, expect, mask, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	tol := 3*math.Sqrt(analytic*(1-analytic)/4000) + 0.01
	if mc < analytic-tol {
		t.Errorf("monte carlo %v below closed form %v (tol %v)", mc, analytic, tol)
	}
	if mc > analytic+0.1 {
		t.Errorf("monte carlo %v far above closed form %v: model drift", mc, analytic)
	}
}
