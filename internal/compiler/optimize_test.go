package compiler

import (
	"math/rand"
	"testing"

	"trios/internal/circuit"
	"trios/internal/topo"
)

func TestOptimizeOptionPreservesSemantics(t *testing.T) {
	g := topo.Grid(2, 3)
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 5; trial++ {
		c := circuit.New(5)
		// Inject redundancy the optimizer can exploit.
		for i := 0; i < 12; i++ {
			p := rng.Perm(5)
			c.CX(p[0], p[1])
			if rng.Float64() < 0.5 {
				c.CX(p[0], p[1])
			}
			c.CCX(p[0], p[1], p[2])
			if rng.Float64() < 0.5 {
				c.CCX(p[0], p[1], p[2])
			}
		}
		for _, pipe := range []Pipeline{Conventional, TriosPipeline} {
			for _, eng := range []OptimizerKind{OptimizerSaturate, OptimizerLegacy} {
				res, err := Compile(c, g, Options{Pipeline: pipe, Optimize: true, Optimizer: eng, Seed: int64(trial)})
				if err != nil {
					t.Fatal(err)
				}
				verifyCompiled(t, res)
			}
		}
	}
}

// TestSaturateOptimizerNeverWorseThanLegacy compiles redundancy-heavy random
// circuits under both optimizer arms and asserts the saturating engine's
// compiled two-qubit count never exceeds the legacy loop's — the engine's
// rule table strictly extends what the legacy optimizer could cancel.
func TestSaturateOptimizerNeverWorseThanLegacy(t *testing.T) {
	g := topo.Grid(2, 3)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		c := circuit.New(5)
		for i := 0; i < 15; i++ {
			p := rng.Perm(5)
			c.CX(p[0], p[1])
			if rng.Float64() < 0.5 {
				c.CX(p[0], p[1])
			}
			c.H(p[2])
			c.CX(p[3], p[2])
			if rng.Float64() < 0.5 {
				c.H(p[2]) // h·cx·h conjugation fodder
			}
			c.CCX(p[0], p[1], p[2])
			if rng.Float64() < 0.5 {
				c.CCX(p[0], p[1], p[2])
			}
		}
		for _, pipe := range []Pipeline{Conventional, TriosPipeline} {
			sat, err := Compile(c, g, Options{Pipeline: pipe, Optimize: true, Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
			leg, err := Compile(c, g, Options{Pipeline: pipe, Optimize: true, Optimizer: OptimizerLegacy, Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
			verifyCompiled(t, sat)
			if sat.TwoQubitGates() > leg.TwoQubitGates() {
				t.Errorf("trial %d/%v: saturate compiled to %d two-qubit gates, legacy to %d",
					trial, pipe, sat.TwoQubitGates(), leg.TwoQubitGates())
			}
		}
	}
}

func TestOptimizeNeverIncreasesGateCount(t *testing.T) {
	g := topo.Johannesburg()
	c := circuit.New(6)
	rng := rand.New(rand.NewSource(102))
	for i := 0; i < 20; i++ {
		p := rng.Perm(6)
		c.CCX(p[0], p[1], p[2])
		c.CCX(p[0], p[1], p[2]) // immediate double: pure redundancy
	}
	plain, err := Compile(c, g, Options{Pipeline: TriosPipeline, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Compile(c, g, Options{Pipeline: TriosPipeline, Seed: 1, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.TwoQubitGates() > plain.TwoQubitGates() {
		t.Errorf("optimizer increased gates: %d vs %d", opt.TwoQubitGates(), plain.TwoQubitGates())
	}
	// All the doubled Toffolis should vanish before routing.
	if opt.TwoQubitGates() != 0 {
		t.Errorf("fully redundant circuit compiled to %d two-qubit gates", opt.TwoQubitGates())
	}
}
