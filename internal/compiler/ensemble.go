package compiler

import (
	"fmt"

	"trios/internal/circuit"
	"trios/internal/topo"
)

// CompileBest runs `attempts` seeded compilations with diverse stochastic
// choices and returns the result minimizing the given cost (two-qubit gate
// count when cost is nil). This is the "ensemble of diverse mappings" idea
// the paper cites (Tannu & Qureshi): stochastic routing makes compilation
// cheap to replicate and the best replica is often meaningfully better than
// the average one.
//
// For attempts beyond the first, random placement replaces the configured
// one so the ensemble actually explores distinct mappings (matching the
// cited technique); attempt 0 keeps the caller's placement so CompileBest
// never does worse than Compile.
func CompileBest(input *circuit.Circuit, g *topo.Graph, opts Options, attempts int, cost func(*Result) float64) (*Result, error) {
	if attempts < 1 {
		return nil, fmt.Errorf("compiler: attempts must be >= 1, got %d", attempts)
	}
	if cost == nil {
		cost = func(r *Result) float64 { return float64(r.TwoQubitGates()) }
	}
	var best *Result
	bestCost := 0.0
	for i := 0; i < attempts; i++ {
		o := opts
		o.Seed = opts.Seed + int64(i)*7919 // decorrelate attempts
		if i > 0 && o.InitialLayout == nil {
			o.Placement = PlaceRandom
		}
		res, err := Compile(input, g, o)
		if err != nil {
			return nil, fmt.Errorf("compiler: ensemble attempt %d: %w", i, err)
		}
		if c := cost(res); best == nil || c < bestCost {
			best, bestCost = res, c
		}
	}
	return best, nil
}
