package compiler

import (
	"context"
	"fmt"

	"trios/internal/circuit"
	"trios/internal/topo"
)

// CompileBest runs `attempts` seeded compilations with diverse stochastic
// choices and returns the result minimizing the given cost (two-qubit gate
// count when cost is nil). This is the "ensemble of diverse mappings" idea
// the paper cites (Tannu & Qureshi): stochastic routing makes compilation
// cheap to replicate and the best replica is often meaningfully better than
// the average one.
//
// For attempts beyond the first, random placement replaces the configured
// one so the ensemble actually explores distinct mappings (matching the
// cited technique); attempt 0 keeps the caller's placement so CompileBest
// never does worse than Compile.
//
// The attempts fan out across the batch engine's worker pool (they share
// one front-pass decomposition) and the winner is selected in attempt
// order, so the result is identical to a serial sweep. Use CompileBestWith
// to bound the parallelism.
func CompileBest(input *circuit.Circuit, g *topo.Graph, opts Options, attempts int, cost func(*Result) float64) (*Result, error) {
	return CompileBestWith(new(Batch), input, g, opts, attempts, cost)
}

// CompileBestWith is CompileBest running on the caller's batch engine, for
// callers that need to cap the ensemble's parallelism — e.g. when nesting
// compilation inside their own worker pool.
func CompileBestWith(b *Batch, input *circuit.Circuit, g *topo.Graph, opts Options, attempts int, cost func(*Result) float64) (*Result, error) {
	if attempts < 1 {
		return nil, fmt.Errorf("compiler: attempts must be >= 1, got %d", attempts)
	}
	if cost == nil {
		cost = func(r *Result) float64 { return float64(r.TwoQubitGates()) }
	}
	jobs := make([]Job, attempts)
	for i := range jobs {
		o := opts
		o.Seed = opts.Seed + int64(i)*7919 // decorrelate attempts
		if i > 0 && o.InitialLayout == nil {
			o.Placement = PlaceRandom
		}
		jobs[i] = Job{ID: fmt.Sprintf("ensemble-%d", i), Input: input, Graph: g, Opts: o}
	}
	results, err := b.Run(context.Background(), jobs)
	if err != nil {
		return nil, err
	}
	var best *Result
	bestCost := 0.0
	for i, jr := range results {
		if jr.Err != nil {
			return nil, fmt.Errorf("compiler: ensemble attempt %d: %w", i, jr.Err)
		}
		if c := cost(jr.Result); best == nil || c < bestCost {
			best, bestCost = jr.Result, c
		}
	}
	return best, nil
}
