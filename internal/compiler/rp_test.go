package compiler

import (
	"testing"

	"trios/internal/benchmarks"
	"trios/internal/sim"
	"trios/internal/topo"
)

// TestRelativePhaseTriosEndToEnd compiles the relative-phase CnX through
// the Trios pipeline on every topology, verifying correctness (truth table
// through the compiled circuit) and that the Margolus trios pay off in
// two-qubit gates versus the exact-Toffoli version.
func TestRelativePhaseTriosEndToEnd(t *testing.T) {
	exact, err := benchmarks.CnXLogAncilla(6) // 11 qubits
	if err != nil {
		t.Fatal(err)
	}
	rp, err := benchmarks.CnXLogAncillaRP(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range topo.PaperTopologies() {
		resExact, err := Compile(exact, g, Options{Pipeline: TriosPipeline, Placement: PlaceGreedy, Seed: 3})
		if err != nil {
			t.Fatalf("%s exact: %v", g.Name(), err)
		}
		resRP, err := Compile(rp, g, Options{Pipeline: TriosPipeline, Placement: PlaceGreedy, Seed: 3})
		if err != nil {
			t.Fatalf("%s rp: %v", g.Name(), err)
		}
		if err := resRP.Verify(); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if resRP.TwoQubitGates() >= resExact.TwoQubitGates() {
			t.Errorf("%s: RP %d two-qubit gates >= exact %d",
				g.Name(), resRP.TwoQubitGates(), resExact.TwoQubitGates())
		}
		// Functional spot checks through the compiled circuit: control
		// patterns all-ones (flips target) and one-zero (doesn't).
		for _, pattern := range []uint64{0b111111, 0b011111, 0} {
			var physIn uint64
			for v := 0; v < 6; v++ {
				if pattern&(1<<uint(v)) != 0 {
					physIn |= 1 << uint(resRP.Initial[v])
				}
			}
			physOut, err := sim.ClassicalOutput(resRP.Physical, physIn)
			if err != nil {
				t.Fatalf("%s: %v", g.Name(), err)
			}
			gotTarget := physOut&(1<<uint(resRP.Final[10])) != 0
			wantTarget := pattern == 0b111111
			if gotTarget != wantTarget {
				t.Fatalf("%s: pattern %06b: target=%v want %v", g.Name(), pattern, gotTarget, wantTarget)
			}
		}
	}
}

// TestRelativePhaseGroverCompiled verifies the RP Grover end to end: the
// compiled circuit still concentrates amplitude on the marked state, and
// costs fewer two-qubit gates than the exact version.
func TestRelativePhaseGroverCompiled(t *testing.T) {
	exact, err := benchmarks.Grover(4) // 5 qubits: fast statevector
	if err != nil {
		t.Fatal(err)
	}
	rp, err := benchmarks.GroverRP(4)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Grid(3, 3)
	resExact, err := Compile(exact, g, Options{Pipeline: TriosPipeline, Placement: PlaceGreedy, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	resRP, err := Compile(rp, g, Options{Pipeline: TriosPipeline, Placement: PlaceGreedy, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resRP.TwoQubitGates() >= resExact.TwoQubitGates() {
		t.Errorf("RP grover %d two-qubit gates >= exact %d", resRP.TwoQubitGates(), resExact.TwoQubitGates())
	}
	state := sim.NewState(g.NumQubits())
	if err := state.ApplyCircuit(resRP.Physical); err != nil {
		t.Fatal(err)
	}
	var marked uint64
	for v := 0; v < 4; v++ {
		marked |= 1 << uint(resRP.Final[v])
	}
	if p := state.Probability(marked); p < 0.9 {
		t.Errorf("compiled RP grover marked probability = %v", p)
	}
}
