package compiler

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"trios/internal/circuit"
	"trios/internal/decompose"
	"trios/internal/topo"
)

// Job is one compilation in a batch: an input circuit, a target device, and
// a pipeline configuration. The experiment suites fan (benchmark x device x
// pipeline x seed) grids out as job lists.
type Job struct {
	// ID labels the job in results and error messages (optional).
	ID string
	// Input must not be mutated while the batch runs; jobs may share it, and
	// sharing is what activates the front-pass deduplication cache.
	Input *circuit.Circuit
	Graph *topo.Graph
	Opts  Options
	// FrontKey, when non-empty, is a content identity for Input (e.g. a hash
	// of its canonical serialization): jobs carrying equal FrontKeys are
	// asserted to have identical Input circuits and share front-cache
	// entries even when their Input pointers differ. Long-lived callers like
	// the serving layer need this — every HTTP request parses a fresh
	// pointer, so pointer-keyed memoization could never hit across requests.
	FrontKey string
}

// JobResult pairs a job with its outcome. Exactly one of Result and Err is
// non-nil for jobs that were reached; jobs skipped by cancellation carry the
// context's error.
type JobResult struct {
	Job     Job
	Index   int
	Result  *Result
	Err     error
	Elapsed time.Duration
}

// Batch is a parallel compilation engine: a fixed worker pool that drains a
// job list, deduplicating the device-independent front passes (input
// optimization + first decomposition) across jobs that share an input
// circuit and pipeline configuration. The zero value is ready to use.
type Batch struct {
	// Workers caps concurrent compilations; <= 0 means GOMAXPROCS.
	Workers int
}

func (b *Batch) workers(jobs int) int {
	w := b.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Stream launches the worker pool over jobs and returns a channel delivering
// results in completion order. The channel closes once every reached job has
// been delivered; cancelling ctx stops the feed, so unreached jobs simply
// never appear. Use Run for ordered collection.
func (b *Batch) Stream(ctx context.Context, jobs []Job) <-chan JobResult {
	out := make(chan JobResult)
	idx := make(chan int)
	cache := newFrontCache()
	// Warm each unique device's distance oracle once before the fan-out: the
	// oracle lives on the Graph (keyed by device identity), so every job
	// sharing a device shares one table build instead of workers racing to
	// build it inside their first timed routing pass.
	warmed := make(map[*topo.Graph]bool)
	for i := range jobs {
		if g := jobs[i].Graph; g != nil && !warmed[g] {
			warmed[g] = true
			g.EnsureOracle()
		}
	}
	go func() {
		defer close(idx)
		for i := range jobs {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < b.workers(len(jobs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				jr := JobResult{Job: jobs[i], Index: i}
				if err := ctx.Err(); err != nil {
					jr.Err = err
				} else {
					start := time.Now()
					jr.Result, jr.Err = compileJob(ctx, cache, jobs[i])
					jr.Elapsed = time.Since(start)
				}
				select {
				case out <- jr:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Serve runs a persistent worker pool over an open-ended job feed: workers
// drain the in channel until it is closed or ctx is cancelled, delivering
// results in completion order on the returned channel (which closes once the
// pool exits). Unlike Stream, Serve has no job list — it is the execution
// engine for long-lived callers like the triosd service, which correlate
// results to requests by Job.ID (JobResult.Index is -1). The pool shares one
// bounded front-pass cache across its lifetime, and cancelling ctx aborts
// in-flight compilations at their next pass boundary. Every job a worker
// picks up produces exactly one JobResult, cancellation included — the
// caller must keep draining the returned channel until it closes, and in
// exchange no waiter is ever left without an answer.
func (b *Batch) Serve(ctx context.Context, in <-chan Job) <-chan JobResult {
	out := make(chan JobResult)
	cache := newFrontCache()
	cache.max = 256
	w := b.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var j Job
				var ok bool
				select {
				case <-ctx.Done():
					return
				case j, ok = <-in:
					if !ok {
						return
					}
				}
				jr := JobResult{Job: j, Index: -1}
				start := time.Now()
				jr.Result, jr.Err = compileJob(ctx, cache, j)
				jr.Elapsed = time.Since(start)
				out <- jr
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Run compiles every job and returns the results in job order. Jobs that
// fail carry their error in JobResult.Err; Run itself errors only when ctx
// is cancelled before the batch drains, in which case unreached jobs carry
// the context's error. The result set is deterministic in the worker count:
// every job's output depends only on its own Options.
func (b *Batch) Run(ctx context.Context, jobs []Job) ([]JobResult, error) {
	results := make([]JobResult, len(jobs))
	for i := range results {
		results[i] = JobResult{Job: jobs[i], Index: i}
	}
	for jr := range b.Stream(ctx, jobs) {
		results[jr.Index] = jr
	}
	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Result == nil && results[i].Err == nil {
				results[i].Err = err
			}
		}
		return results, err
	}
	return results, nil
}

// Results unwraps a completed batch into compiled results in job order,
// returning the first job error encountered.
func Results(rs []JobResult) ([]*Result, error) {
	out := make([]*Result, len(rs))
	for i, jr := range rs {
		if jr.Err != nil {
			if jr.Job.ID != "" {
				return nil, fmt.Errorf("compiler: job %s: %w", jr.Job.ID, jr.Err)
			}
			return nil, fmt.Errorf("compiler: job %d: %w", jr.Index, jr.Err)
		}
		out[i] = jr.Result
	}
	return out, nil
}

// compileJob compiles one job, reusing the batch's front cache. The
// device-capacity check runs before the front so oversized jobs fail with
// the same error as a direct Compile, without paying for (or caching) a
// decomposition that can never route.
func compileJob(ctx context.Context, cache *frontCache, j Job) (*Result, error) {
	if err := checkFits(j.Input, j.Graph); err != nil {
		return nil, err
	}
	prepared, metrics, cached, err := cache.get(j.Input, j.FrontKey, j.Opts)
	if err != nil {
		return nil, err
	}
	if cached {
		// Copy the shared metrics and mark them, so per-pass aggregation
		// can attribute each front computation exactly once.
		marked := make([]PassMetric, len(metrics))
		for i, m := range metrics {
			m.Cached = true
			marked[i] = m
		}
		metrics = marked
	}
	return compileFrom(ctx, j.Input, prepared, metrics, j.Graph, j.Opts)
}

// frontKey identifies a front-pass computation: its output depends only on
// the input circuit identity, the pipeline kind, the (normalized) Toffoli
// mode, and the Optimize flag. Identity is the Job's content FrontKey when
// it has one, else the input pointer.
type frontKey struct {
	input     *circuit.Circuit // nil when content keys the entry
	content   string
	pipeline  Pipeline
	mode      decompose.ToffoliMode
	optimize  bool
	optimizer OptimizerKind
}

// frontOptimizer normalizes Options.Optimizer for the front key: with
// optimization off the engine choice cannot shape the front, so all values
// share one entry.
func frontOptimizer(opts Options) OptimizerKind {
	if !opts.Optimize {
		return OptimizerSaturate
	}
	return opts.Optimizer
}

// frontMode normalizes Options.Mode to the value that actually shapes the
// front passes, so jobs whose fronts are identical share one cache entry:
// the Trios and Groups fronts ignore the mode entirely, and the Conventional
// front treats Auto as Six.
func frontMode(opts Options) decompose.ToffoliMode {
	switch opts.Pipeline {
	case Conventional:
		if opts.Mode == decompose.Auto {
			return decompose.Six
		}
		return opts.Mode
	case TriosPipeline:
		switch opts.Mode {
		case decompose.Auto, decompose.Six, decompose.Eight:
			return decompose.Auto
		}
		// Invalid modes keep their own entry so their error does not poison
		// valid jobs sharing the input.
		return opts.Mode
	default:
		return decompose.Auto
	}
}

// frontCache memoizes PrepareFront outputs per frontKey. Entries are filled
// once; concurrent jobs needing the same front block on the filling job
// instead of recomputing.
type frontCache struct {
	mu sync.Mutex
	// max, when > 0, bounds the map: inserting past it resets the map.
	// Dropped entries are only memoization — callers already holding one
	// keep their *frontEntry and complete normally. Finite job lists
	// (Run/Stream) leave max at 0; the long-lived Serve pool must bound the
	// cache because its keys include *circuit.Circuit pointer identity,
	// which never repeats across independently-parsed requests, so entries
	// would otherwise accumulate for the life of the daemon.
	max int
	m   map[frontKey]*frontEntry
}

type frontEntry struct {
	once    sync.Once
	c       *circuit.Circuit
	metrics []PassMetric
	err     error
}

func newFrontCache() *frontCache {
	return &frontCache{m: make(map[frontKey]*frontEntry)}
}

// get returns the memoized front output for (input, opts); cached reports
// whether this call reused an entry another job computed. A non-empty
// contentKey replaces pointer identity (see Job.FrontKey).
func (fc *frontCache) get(input *circuit.Circuit, contentKey string, opts Options) (c *circuit.Circuit, metrics []PassMetric, cached bool, err error) {
	key := frontKey{input: input, pipeline: opts.Pipeline, mode: frontMode(opts), optimize: opts.Optimize, optimizer: frontOptimizer(opts)}
	if contentKey != "" {
		key.input, key.content = nil, contentKey
	}
	fc.mu.Lock()
	e := fc.m[key]
	if e == nil {
		if fc.max > 0 && len(fc.m) >= fc.max {
			fc.m = make(map[frontKey]*frontEntry)
		}
		e = &frontEntry{}
		fc.m[key] = e
	}
	fc.mu.Unlock()
	filled := false
	e.once.Do(func() {
		e.c, e.metrics, e.err = PrepareFront(input, opts)
		filled = true
	})
	return e.c, e.metrics, !filled, e.err
}
