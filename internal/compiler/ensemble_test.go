package compiler

import (
	"testing"

	"trios/internal/benchmarks"
	"trios/internal/noise"
	"trios/internal/topo"
)

func TestCompileBestNeverWorseThanSingle(t *testing.T) {
	src, err := benchmarks.CnXDirty(6)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Johannesburg()
	opts := Options{Pipeline: TriosPipeline, Router: RouteStochastic, Placement: PlaceGreedy, Seed: 5}
	single, err := Compile(src, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	best, err := CompileBest(src, g, opts, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.TwoQubitGates() > single.TwoQubitGates() {
		t.Errorf("ensemble best %d > single %d", best.TwoQubitGates(), single.TwoQubitGates())
	}
	if err := best.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCompileBestCustomCost(t *testing.T) {
	src, err := benchmarks.CnXDirty(6)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Grid5x4()
	model := noise.Johannesburg0819().Improved(20)
	cost := func(r *Result) float64 {
		p, err := noise.SuccessProbability(r.Physical, model)
		if err != nil {
			return 0
		}
		return -p // maximize success
	}
	best, err := CompileBest(src, g, Options{Pipeline: TriosPipeline, Seed: 2}, 5, cost)
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCompileBestValidation(t *testing.T) {
	src, _ := benchmarks.CnXDirty(6)
	if _, err := CompileBest(src, topo.Johannesburg(), Options{}, 0, nil); err == nil {
		t.Error("expected error for 0 attempts")
	}
}
