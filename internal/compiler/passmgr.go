// Pass-manager engine: the two pipeline shapes of compiler.go are expressed
// as ordered lists of named, instrumented passes over a shared PassContext.
// Composition replaces the former hard-coded pipeline functions, so new
// pipeline variants are assembled from the same pass vocabulary (decompose,
// layout, route, optimize, schedule, stats) instead of new monoliths, and
// every compilation records per-pass wall-clock and gate-count metrics.
package compiler

import (
	"context"
	"fmt"
	"time"

	"trios/internal/circuit"
	"trios/internal/decompose"
	"trios/internal/device"
	"trios/internal/layout"
	"trios/internal/noise"
	"trios/internal/optimize"
	"trios/internal/rewrite"
	"trios/internal/route"
	"trios/internal/sched"
	"trios/internal/topo"
)

// PassContext carries one compilation through a pass pipeline: the working
// circuit, the device graph, the mapping bookkeeping that routing passes
// maintain, and the per-pass metrics the manager accumulates.
type PassContext struct {
	// Ctx, when non-nil, makes the pipeline cancellation-aware: the manager
	// checks it between passes and aborts with the context's error instead of
	// starting the next stage. Individual passes are not interrupted — a
	// cancelled compilation finishes its current pass and stops at the next
	// boundary, so partially-transformed circuits never escape.
	Ctx context.Context
	// Graph is the target coupling graph. It is read-only and may be shared
	// across concurrent compilations.
	Graph *topo.Graph
	// Opts is the configuration the pipeline was built from.
	Opts Options
	// Cost is the resolved cost model (see Options.costModel), fixed once
	// per compilation so the layout, routing, and fixup passes all score
	// against the same memoized tables.
	Cost device.CostModel
	// Circuit is the working circuit; passes replace it as they transform
	// the program. Passes must treat the incoming circuit as immutable (it
	// may be shared with concurrent compilations via the batch front cache).
	Circuit *circuit.Circuit
	// Init is the initial virtual->physical placement, set by the layout
	// pass; Final tracks the placement after routing SWAPs.
	Init  *layout.Layout
	Final *layout.Layout
	// SwapsAdded accumulates routing SWAPs (before 3-CX expansion).
	SwapsAdded int
	// Metrics collects one entry per executed pass.
	Metrics []PassMetric
	// ScheduledDuration is filled by the optional Schedule pass: the ASAP
	// duration of the compiled circuit under a gate-time model.
	ScheduledDuration float64
	// EstimatedSuccess and Makespan are filled by the fidelity pass when the
	// compilation carries a calibration.
	EstimatedSuccess float64
	Makespan         float64
}

// PassMetric records what one pass did: wall-clock cost and the circuit's
// size before and after, so pipeline hot spots and gate-count trajectories
// are observable without re-instrumenting callers.
type PassMetric struct {
	Pass           string        `json:"pass"`
	Duration       time.Duration `json:"duration_ns"`
	GatesBefore    int           `json:"gates_before"`
	GatesAfter     int           `json:"gates_after"`
	TwoQubitBefore int           `json:"two_qubit_before"`
	TwoQubitAfter  int           `json:"two_qubit_after"`
	// Cached marks a front-pass metric reused from the batch engine's
	// deduplication cache: the pass did not run for this compilation, so
	// aggregations should count cached entries zero times (the job that
	// populated the cache carries the uncached metric).
	Cached bool `json:"cached,omitempty"`
}

// Pass is one named stage of a compilation pipeline. Run reads the current
// circuit c (identical to ctx.Circuit) and stores its transformed output and
// any mapping-state updates back into ctx.
type Pass interface {
	Name() string
	Run(ctx *PassContext, c *circuit.Circuit) error
}

// passFunc adapts a function to the Pass interface.
type passFunc struct {
	name string
	fn   func(ctx *PassContext, c *circuit.Circuit) error
}

func (p passFunc) Name() string { return p.name }

func (p passFunc) Run(ctx *PassContext, c *circuit.Circuit) error { return p.fn(ctx, c) }

// NewPass wraps a function as a named Pass.
func NewPass(name string, fn func(ctx *PassContext, c *circuit.Circuit) error) Pass {
	return passFunc{name: name, fn: fn}
}

// costModel returns ctx.Cost, resolving it from the options on first use so
// pipelines driven outside compileFrom (tests, custom pass lists) need no
// setup. Resolution is sticky: every pass of one compilation scores against
// the same model instance and its memoized tables.
func (ctx *PassContext) costModel() (device.CostModel, error) {
	if ctx.Cost == nil {
		cm, err := ctx.Opts.costModel()
		if err != nil {
			return nil, err
		}
		ctx.Cost = cm
	}
	return ctx.Cost, nil
}

// routerWeights unpacks a cost model into the weight function and memoized
// oracle a router's fields take (both nil under Uniform).
func routerWeights(cm device.CostModel, g *topo.Graph) (func(a, b int) float64, *topo.WeightedOracle) {
	w := cm.Weight()
	if w == nil {
		return nil, nil
	}
	return w, cm.Oracle(g)
}

// PassManager runs an ordered list of passes over a PassContext, timing each
// one and recording circuit-size deltas.
type PassManager struct {
	label  string
	passes []Pass
}

// NewPassManager builds a manager from a pass list. The label names the
// pipeline in error messages.
func NewPassManager(label string, passes ...Pass) *PassManager {
	return &PassManager{label: label, passes: passes}
}

// Passes returns the manager's pass list (for inspection and composition).
func (pm *PassManager) Passes() []Pass { return pm.passes }

// Run executes every pass in order, appending one PassMetric per pass to
// ctx.Metrics. The first failing pass aborts the pipeline, as does
// cancellation of ctx.Ctx at any pass boundary.
func (pm *PassManager) Run(ctx *PassContext) error {
	for _, p := range pm.passes {
		if ctx.Ctx != nil {
			if err := ctx.Ctx.Err(); err != nil {
				return fmt.Errorf("compiler: %s pipeline cancelled before pass %s: %w", pm.label, p.Name(), err)
			}
		}
		before := ctx.Circuit.CollectStats()
		start := time.Now()
		if err := p.Run(ctx, ctx.Circuit); err != nil {
			return fmt.Errorf("compiler: %s pipeline, pass %s: %w", pm.label, p.Name(), err)
		}
		after := ctx.Circuit.CollectStats()
		ctx.Metrics = append(ctx.Metrics, PassMetric{
			Pass:           p.Name(),
			Duration:       time.Since(start),
			GatesBefore:    before.Total,
			GatesAfter:     after.Total,
			TwoQubitBefore: before.TwoQubit,
			TwoQubitAfter:  after.TwoQubit,
		})
	}
	return nil
}

// ---- Decompose passes ----

// DecomposeToffoliAll lowers every Toffoli-class gate up front with the given
// mode — the conventional pipeline's first stage.
func DecomposeToffoliAll(mode decompose.ToffoliMode) Pass {
	return NewPass(fmt.Sprintf("decompose:toffoli-all(%v)", mode), func(ctx *PassContext, c *circuit.Circuit) error {
		out, err := decompose.ToffoliAll(c, mode)
		if err != nil {
			return err
		}
		ctx.Circuit = out
		return nil
	})
}

// DecomposeKeepToffoli lowers everything except Toffolis, which stay intact
// for trio-aware mapping and routing — the Trios pipeline's first stage.
func DecomposeKeepToffoli() Pass {
	return NewPass("decompose:keep-toffoli", func(ctx *PassContext, c *circuit.Circuit) error {
		out, err := decompose.KeepToffoli(c)
		if err != nil {
			return err
		}
		ctx.Circuit = out
		return nil
	})
}

// DecomposeKeepMultiQubit keeps any-arity multi-qubit gates intact for group
// routing — the experimental Groups pipeline's first stage.
func DecomposeKeepMultiQubit() Pass {
	return NewPass("decompose:keep-multiqubit", func(ctx *PassContext, c *circuit.Circuit) error {
		out, err := decompose.KeepMultiQubit(c)
		if err != nil {
			return err
		}
		ctx.Circuit = out
		return nil
	})
}

// MappingAwarePass runs the second, placement-aware Toffoli decomposition.
func MappingAwarePass(mode decompose.ToffoliMode) Pass {
	return NewPass(fmt.Sprintf("decompose:mapping-aware(%v)", mode), func(ctx *PassContext, c *circuit.Circuit) error {
		out, err := decompose.MappingAware(c, ctx.Graph, mode)
		if err != nil {
			return err
		}
		ctx.Circuit = out
		return nil
	})
}

// ExpandMCXPass expands routed MCX gates in place, borrowing nearby wires.
func ExpandMCXPass() Pass {
	return NewPass("decompose:expand-mcx", func(ctx *PassContext, c *circuit.Circuit) error {
		out, err := decompose.ExpandMCXNearby(c, ctx.Graph)
		if err != nil {
			return err
		}
		ctx.Circuit = out
		return nil
	})
}

// LowerPass rewrites the circuit into the {u1,u2,u3,cx} basis.
func LowerPass() Pass {
	return NewPass("lower:basis", func(ctx *PassContext, c *circuit.Circuit) error {
		out, err := decompose.LowerToBasis(c)
		if err != nil {
			return err
		}
		ctx.Circuit = out
		return nil
	})
}

// ---- Layout pass ----

// PlacePass computes the initial virtual->physical placement from
// ctx.Opts (explicit layout, greedy, random, or identity) using the current
// circuit's interaction structure, and seeds Final with a copy of it.
func PlacePass() Pass {
	return NewPass("layout:place", func(ctx *PassContext, c *circuit.Circuit) error {
		cm, err := ctx.costModel()
		if err != nil {
			return err
		}
		init, err := initialLayout(c, ctx.Graph, ctx.Opts, cm)
		if err != nil {
			return err
		}
		ctx.Init = init
		ctx.Final = init.Copy()
		return nil
	})
}

// ---- Route passes ----

// RoutePass runs the configured router from the placement chosen by
// PlacePass; trioAware selects the Trios-capable router variants.
func RoutePass(trioAware bool) Pass {
	return NewPass("route:main", func(ctx *PassContext, c *circuit.Circuit) error {
		cm, err := ctx.costModel()
		if err != nil {
			return err
		}
		router, err := pickRouter(ctx.Opts, trioAware, cm, ctx.Graph)
		if err != nil {
			return err
		}
		routed, err := router.Route(c, ctx.Graph, ctx.Init)
		if err != nil {
			return err
		}
		ctx.Circuit = routed.Circuit
		ctx.Final = routed.Final
		ctx.SwapsAdded += routed.SwapsAdded
		return nil
	})
}

// GroupsRoutePass routes any-arity gate groups with the cluster router.
func GroupsRoutePass() Pass {
	return NewPass("route:groups", func(ctx *PassContext, c *circuit.Circuit) error {
		grouper := &route.Groups{Seed: ctx.Opts.Seed}
		routed, err := grouper.Route(c, ctx.Graph, ctx.Init)
		if err != nil {
			return err
		}
		ctx.Circuit = routed.Circuit
		ctx.Final = routed.Final
		ctx.SwapsAdded += routed.SwapsAdded
		return nil
	})
}

// FixupRoutePass patches gates a second decomposition left on non-adjacent
// qubits: it routes the current circuit over physical positions (identity
// layout), then composes the resulting movement into ctx.Final. The router
// is seeded with Seed+1 to decorrelate it from the main routing pass.
func FixupRoutePass(r func(ctx *PassContext) (route.Router, error)) Pass {
	return NewPass("route:fixup", func(ctx *PassContext, c *circuit.Circuit) error {
		router, err := r(ctx)
		if err != nil {
			return err
		}
		fixed, err := router.Route(c, ctx.Graph, layout.Identity(ctx.Graph.NumQubits()))
		if err != nil {
			return err
		}
		// Compose placements: v -> main-route final -> fixup final.
		n := ctx.Graph.NumQubits()
		final := make([]int, n)
		for v := 0; v < n; v++ {
			final[v] = fixed.Final.Phys(ctx.Final.Phys(v))
		}
		composed, err := layout.FromVirtualToPhys(final)
		if err != nil {
			return err
		}
		ctx.Circuit = fixed.Circuit
		ctx.Final = composed
		ctx.SwapsAdded += fixed.SwapsAdded
		return nil
	})
}

// baselineFixupRouter is the Trios pipeline's fixup: a pairwise router that
// patches the non-adjacent CNOTs a forced 6-CNOT decomposition leaves. It
// scores against the same cost model as the main routing pass.
func baselineFixupRouter(ctx *PassContext) (route.Router, error) {
	cm, err := ctx.costModel()
	if err != nil {
		return nil, err
	}
	w, oracle := routerWeights(cm, ctx.Graph)
	return &route.Baseline{Seed: ctx.Opts.Seed + 1, Weight: w, Oracle: oracle}, nil
}

// triosFixupRouter is the Groups pipeline's fixup: a trio-aware router that
// patches the stray pairs and Toffolis of an in-place MCX expansion. Like
// the Groups main router it is noise-blind (the experimental pipeline has no
// weighted mode), so its output never depends on the cost model.
func triosFixupRouter(ctx *PassContext) (route.Router, error) {
	return &route.Trios{Seed: ctx.Opts.Seed + 1}, nil
}

// ---- Optimize passes ----

// OptimizeInputPass cancels commuting inverse pairs and merges rotations on
// the source circuit before decomposition.
func OptimizeInputPass() Pass {
	return NewPass("optimize:input", func(ctx *PassContext, c *circuit.Circuit) error {
		ctx.Circuit = optimize.CancelCommuting(c)
		return nil
	})
}

// OptimizeOutputPass re-runs cancellation on the compiled circuit (routing
// can create adjacent inverse pairs) and consolidates 1-qubit runs.
func OptimizeOutputPass() Pass {
	return NewPass("optimize:output", func(ctx *PassContext, c *circuit.Circuit) error {
		cleaned := optimize.CancelCommuting(c)
		consolidated, err := optimize.Consolidate1Q(cleaned)
		if err != nil {
			return err
		}
		ctx.Circuit = consolidated
		return nil
	})
}

// SaturateInputPass runs the worklist rewrite engine on the source circuit
// before decomposition: cancellations, rotation merges, and structural
// absorptions all apply at the logical level, where no routing constraint
// limits which gates a rule may synthesize.
func SaturateInputPass() Pass {
	return NewPass("optimize:saturate-input", func(ctx *PassContext, c *circuit.Circuit) error {
		out, _ := rewrite.Saturate(c, rewrite.Options{})
		ctx.Circuit = out
		return nil
	})
}

// SaturateRoutedPass runs the rewrite engine on the routed circuit, before
// basis lowering — the window where routing SWAPs, intact Toffolis, and
// named Cliffords still exist, so SWAP absorption and CX/CZ conjugation can
// shed two-qubit gates the post-lowering pass can no longer see. Rules that
// synthesize a two-qubit gate on a new pair are gated by the coupling
// graph's adjacency, so the circuit stays routed.
func SaturateRoutedPass() Pass {
	return NewPass("optimize:saturate-routed", func(ctx *PassContext, c *circuit.Circuit) error {
		out, _ := rewrite.Saturate(c, rewrite.Options{AdjacentOK: ctx.Graph.Connected})
		ctx.Circuit = out
		return nil
	})
}

// SaturateOutputPass alternates the rewrite engine with 1-qubit-run
// consolidation on the lowered circuit. Saturation is local — a mixed-axis
// 1q run is a fixpoint for the rule table — while Consolidate1Q resynthesizes
// such runs into at most one u-gate, which can expose new inverse pairs
// across them; the loop runs until the gate count stops dropping (a few
// iterations in practice, capped to stay linear).
func SaturateOutputPass() Pass {
	return NewPass("optimize:saturate-output", func(ctx *PassContext, c *circuit.Circuit) error {
		cur := c
		best := len(cur.Gates) + 1
		for iter := 0; iter < 4 && len(cur.Gates) < best; iter++ {
			best = len(cur.Gates)
			out, _ := rewrite.Saturate(cur, rewrite.Options{})
			consolidated, err := optimize.Consolidate1Q(out)
			if err != nil {
				return err
			}
			cur = consolidated
		}
		ctx.Circuit = cur
		return nil
	})
}

// ---- Schedule and stats passes ----

// SchedulePass computes the compiled circuit's ASAP duration under a
// gate-time model and records it in ctx.ScheduledDuration. It does not
// modify the circuit, so it composes onto any pipeline without changing
// its output; it is not part of the default pipelines.
func SchedulePass(times sched.GateTimes) Pass {
	return NewPass("schedule:asap", func(ctx *PassContext, c *circuit.Circuit) error {
		d, err := sched.Duration(c, times)
		if err != nil {
			return err
		}
		ctx.ScheduledDuration = d
		return nil
	})
}

// FidelityPass closes a calibrated pipeline: it schedules the compiled
// circuit under the calibration's gate times and evaluates the closed-form
// per-edge/per-qubit success estimate (per-qubit decoherence, the paper's
// "idle errors" accounting), recording both in the context. It reads the
// same Calibration the cost model routes by, so the estimate and the routing
// decisions can never disagree about what the hardware costs. The circuit is
// not modified.
func FidelityPass(cal *device.Calibration) Pass {
	return NewPass("stats:fidelity", func(ctx *PassContext, c *circuit.Circuit) error {
		p, d, err := noise.SuccessWithCalibration(c, cal, noise.CoherencePerQubit)
		if err != nil {
			return err
		}
		ctx.EstimatedSuccess, ctx.Makespan = p, d
		return nil
	})
}

// StatsPass is a terminal no-op whose PassMetric snapshot records the final
// circuit size, closing every pipeline's metric trail.
func StatsPass() Pass {
	return NewPass("stats", func(ctx *PassContext, c *circuit.Circuit) error {
		return nil
	})
}

// ---- Pipeline construction ----

// FrontPasses returns the device-independent prefix of the pipeline for
// opts: input optimization (when enabled) followed by the first
// decomposition. Its output depends only on the input circuit, the pipeline
// kind, the Toffoli mode, and the Optimize flag — never on the device graph,
// placement, or seed — which is what lets the batch engine deduplicate it
// across (device x seed x placement) fan-outs.
func FrontPasses(opts Options) ([]Pass, error) {
	var ps []Pass
	if opts.Optimize {
		if opts.Optimizer == OptimizerLegacy {
			ps = append(ps, OptimizeInputPass())
		} else {
			ps = append(ps, SaturateInputPass())
		}
	}
	switch opts.Pipeline {
	case Conventional:
		mode := opts.Mode
		if mode == decompose.Auto {
			mode = decompose.Six // Qiskit's default Toffoli expansion
		}
		ps = append(ps, DecomposeToffoliAll(mode))
	case TriosPipeline:
		if opts.Mode != decompose.Auto && opts.Mode != decompose.Six && opts.Mode != decompose.Eight {
			return nil, fmt.Errorf("compiler: unsupported toffoli mode %v", opts.Mode)
		}
		ps = append(ps, DecomposeKeepToffoli())
	case GroupsPipeline:
		ps = append(ps, DecomposeKeepMultiQubit())
	default:
		return nil, fmt.Errorf("compiler: unknown pipeline %d", int(opts.Pipeline))
	}
	return ps, nil
}

// BackPasses returns the device-dependent remainder of the pipeline for
// opts: placement, routing, second decomposition, lowering, and output
// optimization.
func BackPasses(opts Options) ([]Pass, error) {
	// Under the saturating optimizer a routed-circuit rewrite pass runs just
	// before lowering, where SWAPs and intact Toffolis are still visible.
	saturating := opts.Optimize && opts.Optimizer != OptimizerLegacy
	lower := []Pass{LowerPass()}
	if saturating {
		lower = []Pass{SaturateRoutedPass(), LowerPass()}
	}
	var ps []Pass
	switch opts.Pipeline {
	case Conventional:
		ps = append(ps, PlacePass(), RoutePass(false))
		ps = append(ps, lower...)
	case TriosPipeline:
		ps = append(ps, PlacePass(), RoutePass(true))
		switch opts.Mode {
		case decompose.Six:
			// Forced 6-CNOT: decompose, then patch non-adjacent CNOTs with a
			// fixup routing pass over physical positions.
			ps = append(ps, MappingAwarePass(decompose.Six), FixupRoutePass(baselineFixupRouter))
		case decompose.Auto, decompose.Eight:
			ps = append(ps, MappingAwarePass(opts.Mode))
		default:
			return nil, fmt.Errorf("compiler: unsupported toffoli mode %v", opts.Mode)
		}
		ps = append(ps, lower...)
	case GroupsPipeline:
		ps = append(ps,
			PlacePass(),
			GroupsRoutePass(),
			ExpandMCXPass(),
			FixupRoutePass(triosFixupRouter),
			MappingAwarePass(decompose.Auto))
		ps = append(ps, lower...)
	default:
		return nil, fmt.Errorf("compiler: unknown pipeline %d", int(opts.Pipeline))
	}
	if opts.Optimize {
		if opts.Optimizer == OptimizerLegacy {
			ps = append(ps, OptimizeOutputPass())
		} else {
			ps = append(ps, SaturateOutputPass())
		}
	}
	if opts.Calibration != nil {
		ps = append(ps, FidelityPass(opts.Calibration))
	}
	ps = append(ps, StatsPass())
	return ps, nil
}

// PipelinePasses returns the complete pass list (front + back) for opts.
func PipelinePasses(opts Options) ([]Pass, error) {
	front, err := FrontPasses(opts)
	if err != nil {
		return nil, err
	}
	back, err := BackPasses(opts)
	if err != nil {
		return nil, err
	}
	return append(front, back...), nil
}

// PrepareFront validates the input and runs only the front passes,
// returning the prepared circuit and the metrics of the passes that ran.
// The batch engine caches its output per (input, pipeline, mode, optimize).
func PrepareFront(input *circuit.Circuit, opts Options) (*circuit.Circuit, []PassMetric, error) {
	if err := input.Validate(); err != nil {
		return nil, nil, err
	}
	front, err := FrontPasses(opts)
	if err != nil {
		return nil, nil, err
	}
	ctx := &PassContext{Opts: opts, Circuit: input}
	pm := NewPassManager(opts.Pipeline.String()+"-front", front...)
	if err := pm.Run(ctx); err != nil {
		return nil, nil, err
	}
	return ctx.Circuit, ctx.Metrics, nil
}

// checkFits rejects circuits with more qubits than the device has.
func checkFits(input *circuit.Circuit, g *topo.Graph) error {
	if input.NumQubits > g.NumQubits() {
		return fmt.Errorf("compiler: circuit needs %d qubits, device %s has %d", input.NumQubits, g.Name(), g.NumQubits())
	}
	return nil
}

// compileFrom runs the pipeline for opts. When prepared is non-nil it is
// the (possibly cached) output of the front passes for this input and
// configuration, and the front is skipped; frontMetrics carries the metrics
// to attribute to it. Cancelling stdctx aborts at the next pass boundary.
func compileFrom(stdctx context.Context, input, prepared *circuit.Circuit, frontMetrics []PassMetric, g *topo.Graph, opts Options) (*Result, error) {
	if err := checkFits(input, g); err != nil {
		return nil, err
	}
	// Resolve the cost model once and verify up front that whatever
	// calibration is in play actually characterizes this device: a noise
	// model missing couplings would otherwise surface as unreachable-path
	// routing failures deep inside a pass.
	cm, err := opts.costModel()
	if err != nil {
		return nil, err
	}
	if opts.Calibration != nil {
		if err := opts.Calibration.CheckGraph(g); err != nil {
			return nil, err
		}
	}
	if nm, ok := cm.(*device.Noise); ok && nm.Calibration() != opts.Calibration {
		if err := nm.Calibration().CheckGraph(g); err != nil {
			return nil, err
		}
	}
	// Template fast path: a source holding a precompiled fragment for this
	// exact (input, device, options) serves it without running the pipeline;
	// a partial match stitches the fragment to a suffix compile. Templates is
	// stripped from the options handed down so fragment and suffix compiles
	// can never recurse into the source.
	if opts.Templates != nil {
		sub := opts
		sub.Templates = nil
		res, ok, terr := opts.Templates.Stitch(stdctx, input, g, sub)
		if terr != nil {
			return nil, terr
		}
		if ok {
			return res, nil
		}
	}
	// Build the device's distance oracle up front (idempotent): the layout
	// and routing passes then run on pure table lookups, and the one-time
	// build cost is not misattributed to whichever pass queried first.
	g.EnsureOracle()
	ctx := &PassContext{Ctx: stdctx, Graph: g, Opts: opts, Cost: cm}
	if prepared != nil {
		ctx.Circuit = prepared
		ctx.Metrics = append(ctx.Metrics, frontMetrics...)
	} else {
		c, metrics, err := PrepareFront(input, opts)
		if err != nil {
			return nil, err
		}
		ctx.Circuit, ctx.Metrics = c, metrics
	}
	back, err := BackPasses(opts)
	if err != nil {
		return nil, err
	}
	pm := NewPassManager(opts.Pipeline.String(), back...)
	if err := pm.Run(ctx); err != nil {
		return nil, err
	}
	return &Result{
		Input:             input,
		Physical:          ctx.Circuit,
		Initial:           ctx.Init.VirtualToPhys(),
		Final:             ctx.Final.VirtualToPhys(),
		SwapsAdded:        ctx.SwapsAdded,
		Graph:             g,
		Passes:            ctx.Metrics,
		ScheduledDuration: ctx.ScheduledDuration,
		CostModel:         cm.Name(),
		EstimatedSuccess:  ctx.EstimatedSuccess,
		Makespan:          ctx.Makespan,
	}, nil
}
