package compiler

import (
	"fmt"
	"testing"

	"trios/internal/benchmarks"
	"trios/internal/decompose"
	"trios/internal/sched"
	"trios/internal/topo"
)

// sameResult asserts two results are gate-for-gate identical.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !got.Physical.Equal(want.Physical) {
		t.Fatalf("%s: compiled circuits differ (%d vs %d gates)", label, len(got.Physical.Gates), len(want.Physical.Gates))
	}
	if got.SwapsAdded != want.SwapsAdded {
		t.Fatalf("%s: swaps differ: %d vs %d", label, got.SwapsAdded, want.SwapsAdded)
	}
	for v := range want.Initial {
		if got.Initial[v] != want.Initial[v] {
			t.Fatalf("%s: initial layout differs at %d: %d vs %d", label, v, got.Initial[v], want.Initial[v])
		}
		if got.Final[v] != want.Final[v] {
			t.Fatalf("%s: final layout differs at %d: %d vs %d", label, v, got.Final[v], want.Final[v])
		}
	}
}

// TestPassManagerMatchesLegacyOnRegistry compiles every registry benchmark
// with both paper pipelines through the PassManager and asserts the output
// is gate-for-gate identical to the pre-refactor monolithic pipelines.
func TestPassManagerMatchesLegacyOnRegistry(t *testing.T) {
	g := topo.Johannesburg()
	for _, b := range benchmarks.All() {
		c, err := b.Build()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, pipe := range []Pipeline{Conventional, TriosPipeline} {
			opts := Options{
				Pipeline:  pipe,
				Router:    RouteStochastic,
				Placement: PlaceIdentity,
				Seed:      2021,
			}
			got, err := Compile(c, g, opts)
			if err != nil {
				t.Fatalf("%s/%v: %v", b.Name, pipe, err)
			}
			want, err := legacyCompile(c, g, opts)
			if err != nil {
				t.Fatalf("%s/%v legacy: %v", b.Name, pipe, err)
			}
			sameResult(t, fmt.Sprintf("%s/%v", b.Name, pipe), got, want)
		}
	}
}

// TestPassManagerMatchesLegacyConfigs sweeps the design-choice grid —
// routers, placements, Toffoli modes, optimization, and the Groups pipeline
// — on one Toffoli-heavy benchmark.
func TestPassManagerMatchesLegacyConfigs(t *testing.T) {
	b, err := benchmarks.ByName("grovers-9")
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Johannesburg()
	cases := []Options{
		{Pipeline: Conventional, Router: RouteDirect, Placement: PlaceGreedy, Seed: 1},
		{Pipeline: Conventional, Router: RouteLookahead, Placement: PlaceIdentity, Seed: 2},
		{Pipeline: Conventional, Mode: decompose.Eight, Router: RouteStochastic, Placement: PlaceRandom, Seed: 3},
		// Optimize cases pin OptimizerLegacy: legacyCompile is the
		// pre-rewrite-engine loop, and the byte-identity assertion only holds
		// against the arm that reproduces it. The saturating default is
		// covered by equivalence (not identity) tests in optimize_test.go.
		{Pipeline: Conventional, Router: RouteDirect, Placement: PlaceGreedy, Optimize: true, Optimizer: OptimizerLegacy, Seed: 4},
		{Pipeline: TriosPipeline, Router: RouteDirect, Placement: PlaceGreedy, Seed: 5},
		{Pipeline: TriosPipeline, Mode: decompose.Six, Router: RouteStochastic, Placement: PlaceIdentity, Seed: 6},
		{Pipeline: TriosPipeline, Mode: decompose.Eight, Router: RouteLookahead, Placement: PlaceRandom, Seed: 7},
		{Pipeline: TriosPipeline, Router: RouteDirect, Placement: PlaceGreedy, Optimize: true, Optimizer: OptimizerLegacy, Seed: 8},
		{Pipeline: GroupsPipeline, Placement: PlaceGreedy, Seed: 9},
		{Pipeline: GroupsPipeline, Placement: PlaceIdentity, Optimize: true, Optimizer: OptimizerLegacy, Seed: 10},
	}
	for i, opts := range cases {
		got, err := Compile(c, g, opts)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want, err := legacyCompile(c, g, opts)
		if err != nil {
			t.Fatalf("case %d legacy: %v", i, err)
		}
		sameResult(t, fmt.Sprintf("case %d", i), got, want)
	}
}

// TestPassMetricsRecorded asserts every pipeline stage reports a metric and
// that the terminal stats snapshot matches the compiled circuit.
func TestPassMetricsRecorded(t *testing.T) {
	b, err := benchmarks.ByName("grovers-9")
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Pipeline: TriosPipeline, Placement: PlaceGreedy, Seed: 1}
	res, err := Compile(c, topo.Johannesburg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PipelinePasses(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Passes) != len(want) {
		t.Fatalf("got %d pass metrics, pipeline has %d passes", len(res.Passes), len(want))
	}
	for i, p := range want {
		if res.Passes[i].Pass != p.Name() {
			t.Fatalf("metric %d is %q, want %q", i, res.Passes[i].Pass, p.Name())
		}
	}
	last := res.Passes[len(res.Passes)-1]
	if last.Pass != "stats" {
		t.Fatalf("last pass is %q, want stats", last.Pass)
	}
	stats := res.Physical.CollectStats()
	if last.GatesAfter != stats.Total || last.TwoQubitAfter != stats.TwoQubit {
		t.Fatalf("stats snapshot (%d gates, %d 2q) does not match circuit (%d, %d)",
			last.GatesAfter, last.TwoQubitAfter, stats.Total, stats.TwoQubit)
	}
}

// TestUnknownPipelineAndMode preserves the old error behavior through the
// pass-composed entry point.
func TestUnknownPipelineAndMode(t *testing.T) {
	b, _ := benchmarks.ByName("grovers-9")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Johannesburg()
	if _, err := Compile(c, g, Options{Pipeline: Pipeline(99)}); err == nil {
		t.Fatal("expected error for unknown pipeline")
	}
	if _, err := Compile(c, g, Options{Pipeline: TriosPipeline, Mode: decompose.ToffoliMode(99)}); err == nil {
		t.Fatal("expected error for unsupported toffoli mode")
	}
}

// TestSchedulePassComposes runs a custom pipeline that appends the Schedule
// pass and checks it records a positive duration without altering the
// compiled circuit.
func TestSchedulePassComposes(t *testing.T) {
	b, _ := benchmarks.ByName("grovers-9")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Johannesburg()
	opts := Options{Pipeline: TriosPipeline, Placement: PlaceGreedy, Seed: 3}
	base, err := Compile(c, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	passes, err := PipelinePasses(opts)
	if err != nil {
		t.Fatal(err)
	}
	passes = append(passes, SchedulePass(sched.JohannesburgTimes()))
	ctx := &PassContext{Graph: g, Opts: opts, Circuit: c}
	if err := NewPassManager("custom", passes...).Run(ctx); err != nil {
		t.Fatal(err)
	}
	if !ctx.Circuit.Equal(base.Physical) {
		t.Fatal("schedule pass changed the compiled circuit")
	}
	if ctx.ScheduledDuration <= 0 {
		t.Fatalf("scheduled duration = %v, want > 0", ctx.ScheduledDuration)
	}
}
