package compiler

import (
	"testing"

	"trios/internal/circuit"
	"trios/internal/noise"
	"trios/internal/topo"
)

// TestNoiseAwareRoutingAvoidsHotEdges exercises the paper's §4 noise-aware
// extension end to end: with one very bad coupling on the only short path,
// weighting routing edges by -log CNOT success must steer SWAPs around it
// and yield a higher per-edge success estimate than noise-blind routing.
func TestNoiseAwareRoutingAvoidsHotEdges(t *testing.T) {
	// Ring of 7: the unique shortest path 0-1-2-3 crosses a hot coupling;
	// the one-hop-longer way around (0-6-5-4-3) is clean. Noise-blind
	// routing must take the short hot path; noise-aware must detour.
	g := topo.Ring(7)
	em := noise.UniformEdgeMap(g, 0.005)
	em.SetError(1, 2, 0.35)

	src := circuit.New(2)
	src.CX(0, 1)
	init := []int{0, 3}

	blind, err := Compile(src, g, Options{Pipeline: Conventional, InitialLayout: init, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Compile(src, g, Options{
		Pipeline: Conventional, InitialLayout: init, Seed: 2,
		NoiseWeight: em.RouteWeight(),
	})
	if err != nil {
		t.Fatal(err)
	}

	model := noise.Johannesburg0819()
	model.ReadoutError = 0
	pBlind, err := noise.SuccessProbabilityEdges(blind.Physical, model, em)
	if err != nil {
		t.Fatal(err)
	}
	pAware, err := noise.SuccessProbabilityEdges(aware.Physical, model, em)
	if err != nil {
		t.Fatal(err)
	}
	// The noise-aware route detours around qubit 4's hot couplings.
	for _, gate := range aware.Physical.Gates {
		if gate.Name == circuit.CX {
			e, err := em.Error(gate.Qubits[0], gate.Qubits[1])
			if err != nil {
				t.Fatal(err)
			}
			if e > 0.3 {
				t.Errorf("noise-aware routing used hot edge (%d,%d)", gate.Qubits[0], gate.Qubits[1])
			}
		}
	}
	if pAware <= pBlind {
		t.Errorf("noise-aware success %v <= blind %v", pAware, pBlind)
	}
}

// TestNoiseAwareTrioRouting checks the Trios pipeline accepts edge weights
// and produces legal, verified circuits under them.
func TestNoiseAwareTrioRouting(t *testing.T) {
	g := topo.Grid(3, 3)
	em := noise.SyntheticCalibration(g, 0.01, 0.6, 2, 9)
	src := circuit.New(3)
	src.CCX(0, 1, 2)
	res, err := Compile(src, g, Options{
		Pipeline:      TriosPipeline,
		InitialLayout: []int{0, 8, 6},
		NoiseWeight:   em.RouteWeight(),
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	verifyCompiled(t, res)
}

// TestNoiseAwareTrioAvoidsHotCoupler reproduces the examples/noiseaware
// scenario: a Toffoli straddling degraded couplers must form its trio on
// clean edges when routing is noise-aware, even at the cost of extra SWAPs.
func TestNoiseAwareTrioAvoidsHotCoupler(t *testing.T) {
	g := topo.Johannesburg()
	hot := [][2]int{{7, 12}, {5, 10}, {6, 7}}
	em := noise.UniformEdgeMap(g, 0.005)
	for _, e := range hot {
		em.SetError(e[0], e[1], 0.35)
	}
	src := circuit.New(3)
	src.CCX(0, 1, 2)
	aware, err := Compile(src, g, Options{
		Pipeline:      TriosPipeline,
		InitialLayout: []int{2, 11, 15},
		NoiseWeight:   em.RouteWeight(),
		Seed:          8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := aware.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, gate := range aware.Physical.Gates {
		if gate.Name != circuit.CX {
			continue
		}
		e, err := em.Error(gate.Qubits[0], gate.Qubits[1])
		if err != nil {
			t.Fatal(err)
		}
		if e > 0.3 {
			t.Errorf("noise-aware trio used hot coupler (%d,%d)", gate.Qubits[0], gate.Qubits[1])
		}
	}
	// And it must beat the blind compilation under the per-edge model.
	blind, err := Compile(src, g, Options{
		Pipeline:      TriosPipeline,
		InitialLayout: []int{2, 11, 15},
		Seed:          8,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := noise.Johannesburg0819()
	model.ReadoutError = 0
	pAware, err := noise.SuccessProbabilityEdges(aware.Physical, model, em)
	if err != nil {
		t.Fatal(err)
	}
	pBlind, err := noise.SuccessProbabilityEdges(blind.Physical, model, em)
	if err != nil {
		t.Fatal(err)
	}
	if pAware <= pBlind {
		t.Errorf("noise-aware %v <= blind %v", pAware, pBlind)
	}
}

// TestStochasticAndLookaheadAcceptNoiseWeights: since the unified cost
// layer, every router scores against the weighted-path tables — the
// stochastic and lookahead strategies included. The compiled circuits must
// stay legal and verified under weights.
func TestStochasticAndLookaheadAcceptNoiseWeights(t *testing.T) {
	g := topo.Grid(3, 3)
	em := noise.SyntheticCalibration(g, 0.01, 0.6, 2, 9)
	src := circuit.New(4)
	src.CX(0, 3).CCX(0, 1, 2).CX(2, 3).CX(0, 2)
	for _, router := range []RouterKind{RouteStochastic, RouteLookahead} {
		res, err := Compile(src, g, Options{
			Pipeline:    TriosPipeline,
			Router:      router,
			Placement:   PlaceGreedy,
			NoiseWeight: em.RouteWeight(),
			Seed:        3,
		})
		if err != nil {
			t.Fatalf("%v: %v", router, err)
		}
		verifyCompiled(t, res)
	}
}

// TestLookaheadNoiseAwareAvoidsHotEdge: the lookahead swap scoring must
// steer a blocked pair around a degraded coupler when the weighted tables
// say the detour is cheaper.
func TestLookaheadNoiseAwareAvoidsHotEdge(t *testing.T) {
	// Ring of 7 as in the direct-router test: the short way from 0 to 3
	// crosses the hot (1,2) coupling, the long way is clean.
	g := topo.Ring(7)
	em := noise.UniformEdgeMap(g, 0.005)
	em.SetError(1, 2, 0.35)
	src := circuit.New(2)
	src.CX(0, 1)
	init := []int{0, 3}
	aware, err := Compile(src, g, Options{
		Pipeline: Conventional, Router: RouteLookahead,
		InitialLayout: init, Seed: 2,
		NoiseWeight: em.RouteWeight(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, gate := range aware.Physical.Gates {
		if gate.Name != circuit.CX {
			continue
		}
		e, err := em.Error(gate.Qubits[0], gate.Qubits[1])
		if err != nil {
			t.Fatal(err)
		}
		if e > 0.3 {
			t.Errorf("noise-aware lookahead used hot edge (%d,%d)", gate.Qubits[0], gate.Qubits[1])
		}
	}
}

// TestStochasticNoiseAwareImprovesSuccess: across seeds, weighted delta
// scoring should on average compile to no worse per-edge success than the
// noise-blind stochastic walk on a landscape with one very hot coupler.
func TestStochasticNoiseAwareImprovesSuccess(t *testing.T) {
	g := topo.Ring(7)
	em := noise.UniformEdgeMap(g, 0.005)
	em.SetError(1, 2, 0.35)
	src := circuit.New(2)
	src.CX(0, 1)
	init := []int{0, 3}
	model := noise.Johannesburg0819()
	model.ReadoutError = 0
	sumBlind, sumAware := 0.0, 0.0
	for seed := int64(0); seed < 8; seed++ {
		blind, err := Compile(src, g, Options{
			Pipeline: Conventional, Router: RouteStochastic,
			InitialLayout: init, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		aware, err := Compile(src, g, Options{
			Pipeline: Conventional, Router: RouteStochastic,
			InitialLayout: init, Seed: seed,
			NoiseWeight: em.RouteWeight(),
		})
		if err != nil {
			t.Fatal(err)
		}
		pb, err := noise.SuccessProbabilityEdges(blind.Physical, model, em)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := noise.SuccessProbabilityEdges(aware.Physical, model, em)
		if err != nil {
			t.Fatal(err)
		}
		sumBlind += pb
		sumAware += pa
	}
	if sumAware < sumBlind {
		t.Errorf("noise-aware stochastic mean success %v < blind %v", sumAware/8, sumBlind/8)
	}
}
