package compiler

// This file preserves the pre-PassManager monolithic pipeline
// implementations verbatim as a golden reference: the determinism tests in
// passmgr_test.go assert that the pass-composed pipelines produce
// gate-for-gate identical output. It is test-only code and ships in no
// binary.

import (
	"fmt"

	"trios/internal/circuit"
	"trios/internal/decompose"
	"trios/internal/layout"
	"trios/internal/optimize"
	"trios/internal/route"
	"trios/internal/topo"
)

// legacyCompile is the pre-refactor Compile.
func legacyCompile(input *circuit.Circuit, g *topo.Graph, opts Options) (*Result, error) {
	if input.NumQubits > g.NumQubits() {
		return nil, fmt.Errorf("compiler: circuit needs %d qubits, device %s has %d", input.NumQubits, g.Name(), g.NumQubits())
	}
	if err := input.Validate(); err != nil {
		return nil, err
	}
	source := input
	if opts.Optimize {
		source = optimize.CancelCommuting(input)
	}
	var res *Result
	var err error
	switch opts.Pipeline {
	case Conventional:
		res, err = legacyCompileConventional(source, g, opts)
	case TriosPipeline:
		res, err = legacyCompileTrios(source, g, opts)
	case GroupsPipeline:
		res, err = legacyCompileGroups(source, g, opts)
	default:
		return nil, fmt.Errorf("compiler: unknown pipeline %d", int(opts.Pipeline))
	}
	if err != nil {
		return nil, err
	}
	res.Input = input
	if opts.Optimize {
		cleaned := optimize.CancelCommuting(res.Physical)
		consolidated, err := optimize.Consolidate1Q(cleaned)
		if err != nil {
			return nil, err
		}
		res.Physical = consolidated
	}
	return res, nil
}

func legacyCompileConventional(input *circuit.Circuit, g *topo.Graph, opts Options) (*Result, error) {
	mode := opts.Mode
	if mode == decompose.Auto {
		mode = decompose.Six
	}
	decomposed, err := decompose.ToffoliAll(input, mode)
	if err != nil {
		return nil, err
	}
	cm, err := opts.costModel()
	if err != nil {
		return nil, err
	}
	init, err := initialLayout(decomposed, g, opts, cm)
	if err != nil {
		return nil, err
	}
	router, err := pickRouter(opts, false, cm, g)
	if err != nil {
		return nil, err
	}
	routed, err := router.Route(decomposed, g, init)
	if err != nil {
		return nil, err
	}
	physical, err := decompose.LowerToBasis(routed.Circuit)
	if err != nil {
		return nil, err
	}
	return &Result{
		Input:      input,
		Physical:   physical,
		Initial:    init.VirtualToPhys(),
		Final:      routed.Final.VirtualToPhys(),
		SwapsAdded: routed.SwapsAdded,
		Graph:      g,
	}, nil
}

func legacyCompileTrios(input *circuit.Circuit, g *topo.Graph, opts Options) (*Result, error) {
	kept, err := decompose.KeepToffoli(input)
	if err != nil {
		return nil, err
	}
	cm, err := opts.costModel()
	if err != nil {
		return nil, err
	}
	init, err := initialLayout(kept, g, opts, cm)
	if err != nil {
		return nil, err
	}
	router, err := pickRouter(opts, true, cm, g)
	if err != nil {
		return nil, err
	}
	routed, err := router.Route(kept, g, init)
	if err != nil {
		return nil, err
	}
	mode := opts.Mode
	if mode == decompose.Six {
		second, err := decompose.MappingAware(routed.Circuit, g, decompose.Six)
		if err != nil {
			return nil, err
		}
		fixRouter := &route.Baseline{Seed: opts.Seed + 1, Weight: opts.NoiseWeight}
		fixed, err := fixRouter.Route(second, g, layout.Identity(g.NumQubits()))
		if err != nil {
			return nil, err
		}
		physical, err := decompose.LowerToBasis(fixed.Circuit)
		if err != nil {
			return nil, err
		}
		final := make([]int, g.NumQubits())
		for v := 0; v < g.NumQubits(); v++ {
			final[v] = fixed.Final.Phys(routed.Final.Phys(v))
		}
		return &Result{
			Input:      input,
			Physical:   physical,
			Initial:    init.VirtualToPhys(),
			Final:      final,
			SwapsAdded: routed.SwapsAdded + fixed.SwapsAdded,
			Graph:      g,
		}, nil
	}
	if mode == decompose.Auto || mode == decompose.Eight {
		second, err := decompose.MappingAware(routed.Circuit, g, mode)
		if err != nil {
			return nil, err
		}
		physical, err := decompose.LowerToBasis(second)
		if err != nil {
			return nil, err
		}
		return &Result{
			Input:      input,
			Physical:   physical,
			Initial:    init.VirtualToPhys(),
			Final:      routed.Final.VirtualToPhys(),
			SwapsAdded: routed.SwapsAdded,
			Graph:      g,
		}, nil
	}
	return nil, fmt.Errorf("compiler: unsupported toffoli mode %v", opts.Mode)
}

func legacyCompileGroups(input *circuit.Circuit, g *topo.Graph, opts Options) (*Result, error) {
	kept, err := decompose.KeepMultiQubit(input)
	if err != nil {
		return nil, err
	}
	cm, err := opts.costModel()
	if err != nil {
		return nil, err
	}
	init, err := initialLayout(kept, g, opts, cm)
	if err != nil {
		return nil, err
	}
	grouper := &route.Groups{Seed: opts.Seed}
	routed, err := grouper.Route(kept, g, init)
	if err != nil {
		return nil, err
	}
	expanded, err := decompose.ExpandMCXNearby(routed.Circuit, g)
	if err != nil {
		return nil, err
	}
	fixRouter := &route.Trios{Seed: opts.Seed + 1}
	fixed, err := fixRouter.Route(expanded, g, layout.Identity(g.NumQubits()))
	if err != nil {
		return nil, err
	}
	second, err := decompose.MappingAware(fixed.Circuit, g, decompose.Auto)
	if err != nil {
		return nil, err
	}
	physical, err := decompose.LowerToBasis(second)
	if err != nil {
		return nil, err
	}
	final := make([]int, g.NumQubits())
	for v := 0; v < g.NumQubits(); v++ {
		final[v] = fixed.Final.Phys(routed.Final.Phys(v))
	}
	return &Result{
		Input:      input,
		Physical:   physical,
		Initial:    init.VirtualToPhys(),
		Final:      final,
		SwapsAdded: routed.SwapsAdded + fixed.SwapsAdded,
		Graph:      g,
	}, nil
}
