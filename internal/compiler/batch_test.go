package compiler

import (
	"context"
	"strings"
	"testing"

	"trios/internal/benchmarks"
	"trios/internal/circuit"
	"trios/internal/topo"
)

// batchTestJobs builds a mixed (benchmark x topology x pipeline x seed)
// grid with shared input circuits, so the front cache is exercised.
func batchTestJobs(t *testing.T) []Job {
	t.Helper()
	var jobs []Job
	for _, name := range []string{"grovers-9", "cuccaro_adder-20", "cnx_logancilla-19"} {
		b, err := benchmarks.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range []*topo.Graph{topo.Johannesburg(), topo.Line20()} {
			for _, pipe := range []Pipeline{Conventional, TriosPipeline} {
				for seed := int64(1); seed <= 2; seed++ {
					jobs = append(jobs, Job{
						ID:    name + "/" + g.Name() + "/" + pipe.String(),
						Input: c,
						Graph: g,
						Opts: Options{
							Pipeline:  pipe,
							Router:    RouteStochastic,
							Placement: PlaceIdentity,
							Seed:      seed,
						},
					})
				}
			}
		}
	}
	return jobs
}

// TestBatchWorkersDeterministic asserts -workers=1 and -workers=8 produce
// identical result sets, job for job.
func TestBatchWorkersDeterministic(t *testing.T) {
	jobs := batchTestJobs(t)
	serial, err := (&Batch{Workers: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Batch{Workers: 8}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %s: errs %v / %v", jobs[i].ID, serial[i].Err, parallel[i].Err)
		}
		sameResult(t, jobs[i].ID, parallel[i].Result, serial[i].Result)
	}
}

// TestBatchMatchesDirectCompile asserts that batched compilation — which
// reuses cached front-pass outputs across jobs — yields exactly what a
// direct Compile call yields for every job.
func TestBatchMatchesDirectCompile(t *testing.T) {
	jobs := batchTestJobs(t)
	rs, err := new(Batch).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if rs[i].Err != nil {
			t.Fatalf("job %s: %v", j.ID, rs[i].Err)
		}
		want, err := Compile(j.Input, j.Graph, j.Opts)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, j.ID, rs[i].Result, want)
		if err := rs[i].Result.Verify(); err != nil {
			t.Fatalf("job %s: %v", j.ID, err)
		}
	}
}

// TestBatchJobError checks a bad job reports its own error without
// poisoning the rest of the batch.
func TestBatchJobError(t *testing.T) {
	b, _ := benchmarks.ByName("grovers-9")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	big := circuit.New(40)
	big.CCX(0, 1, 39)
	jobs := []Job{
		{ID: "ok", Input: c, Graph: topo.Johannesburg(), Opts: Options{Pipeline: TriosPipeline, Seed: 1}},
		{ID: "too-big", Input: big, Graph: topo.Johannesburg(), Opts: Options{Pipeline: TriosPipeline, Seed: 1}},
	}
	rs, err := new(Batch).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err != nil {
		t.Fatalf("good job failed: %v", rs[0].Err)
	}
	if rs[1].Err == nil {
		t.Fatal("oversized job should fail")
	}
	if _, err := Results(rs); err == nil || !strings.Contains(err.Error(), "too-big") {
		t.Fatalf("Results should surface the failing job ID, got %v", err)
	}
}

// TestBatchCancellation checks a cancelled context stops the batch and
// marks unreached jobs with the context error.
func TestBatchCancellation(t *testing.T) {
	jobs := batchTestJobs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, err := (&Batch{Workers: 2}).Run(ctx, jobs)
	if err == nil {
		t.Fatal("expected context error")
	}
	for _, jr := range rs {
		if jr.Err == nil && jr.Result == nil {
			t.Fatal("unreached job has neither result nor error")
		}
	}
}
