// Package compiler assembles the decomposition, mapping, and routing passes
// into the two pipeline shapes compared by the paper (Fig. 2):
//
//   - Conventional: decompose everything to 1- and 2-qubit gates first, then
//     map and route pairs (the Qiskit-like baseline).
//   - Trios: decompose down to Toffolis, map and route trios as units, then
//     run the mapping-aware second decomposition.
//
// Both pipelines are expressed as pass lists run by the PassManager engine
// (passmgr.go), which instruments every stage; the Batch engine (batch.go)
// fans whole (benchmark x device x pipeline x seed) job sets across a worker
// pool with a keyed cache that deduplicates repeated decompositions.
package compiler

import (
	"context"
	"fmt"
	"math/rand"

	"trios/internal/circuit"
	"trios/internal/decompose"
	"trios/internal/device"
	"trios/internal/layout"
	"trios/internal/route"
	"trios/internal/topo"
)

// Pipeline selects the overall compilation structure.
type Pipeline int

const (
	// Conventional is the decompose-first baseline (Fig. 2a).
	Conventional Pipeline = iota
	// TriosPipeline is the split-decomposition flow (Fig. 2b).
	TriosPipeline
	// GroupsPipeline is the experimental §4 extension: multi-qubit gates of
	// any arity stay intact through routing, their operands are gathered
	// into one connected cluster, and the MCX is decomposed in place
	// borrowing the nearest wires, with a Trios fixup pass afterwards.
	GroupsPipeline
)

func (p Pipeline) String() string {
	switch p {
	case TriosPipeline:
		return "trios"
	case GroupsPipeline:
		return "groups"
	}
	return "baseline"
}

// Placement selects the initial-mapping strategy.
type Placement int

const (
	// PlaceIdentity maps logical qubit i to physical qubit i.
	PlaceIdentity Placement = iota
	// PlaceGreedy uses the interaction-aware greedy mapper.
	PlaceGreedy
	// PlaceRandom uses a seeded random placement (the paper's Toffoli
	// experiments place inputs at random locations to emulate mid-circuit
	// conditions).
	PlaceRandom
)

// RouterKind selects the routing strategy within a pipeline.
type RouterKind int

const (
	// RouteDirect uses deterministic shortest-path routing with stochastic
	// tie-breaks — the strongest heuristic in this repo.
	RouteDirect RouterKind = iota
	// RouteStochastic uses the Qiskit-0.14-style randomized layer router,
	// the era-faithful baseline the paper measures against. In the Trios
	// pipeline only two-qubit gates route stochastically; trios still use
	// the deterministic meeting-point strategy.
	RouteStochastic
	// RouteLookahead uses the SABRE-style lookahead router representing the
	// prior-art class the paper's §3 argues only treats the symptoms of
	// premature decomposition.
	RouteLookahead
)

func (r RouterKind) String() string {
	switch r {
	case RouteStochastic:
		return "stochastic"
	case RouteLookahead:
		return "lookahead"
	}
	return "direct"
}

// OptimizerKind selects which gate-optimization engine the Optimize flag
// runs. It only matters when Options.Optimize is true.
type OptimizerKind int

const (
	// OptimizerSaturate is the default: the worklist rewrite engine
	// (internal/rewrite) saturates a declarative rule table to a fixpoint —
	// inverse cancellation across commuting windows, axis-family rotation
	// merging with 2π normalization, CP/CZ canonicalization, SWAP and
	// Toffoli absorptions, and Hadamard conjugations — in amortized
	// O(gates·rules). It runs on the input, again on the routed circuit
	// (adjacency-gated so rewrites never un-route), and on the lowered
	// output interleaved with 1q consolidation.
	OptimizerSaturate OptimizerKind = iota
	// OptimizerLegacy is the pre-rewrite-engine golden arm: the quadratic
	// rescan-and-recurse Cancel/CancelCommuting loop plus output
	// consolidation, preserved bit-for-bit for regression comparison.
	OptimizerLegacy
)

func (o OptimizerKind) String() string {
	if o == OptimizerLegacy {
		return "legacy"
	}
	return "saturate"
}

// Options configures a compilation.
type Options struct {
	Pipeline Pipeline
	// Router picks the routing strategy (default RouteDirect).
	Router RouterKind
	// Mode picks the Toffoli decomposition. For the conventional pipeline it
	// is applied up front (the paper's "Qiskit (baseline)" uses Six and
	// "Qiskit (8-CNOT Toffoli)" Eight). For Trios it drives the second,
	// mapping-aware pass: Auto (default) chooses per placement; Six forces
	// the 6-CNOT form and relies on a fixup routing pass for missing edges.
	Mode decompose.ToffoliMode
	// Placement picks the initial mapping strategy; InitialLayout overrides
	// it with an explicit logical->physical assignment when non-nil.
	Placement     Placement
	InitialLayout []int
	// Seed drives stochastic routing tie-breaks and random placement.
	Seed int64
	// Optimize enables commutation-free gate cancellation and rotation
	// merging (§2.4), applied to the input and again to the compiled
	// circuit where routing may have created adjacent inverse pairs.
	Optimize bool
	// Optimizer picks the optimization engine Optimize runs: the saturating
	// rewrite engine (default) or the legacy cancel loop kept as a golden
	// arm. Ignored when Optimize is false.
	Optimizer OptimizerKind
	// Calibration, when non-nil, is the device characterization driving the
	// compile: unless CostModel overrides it, layout and routing weigh edges
	// by the calibration's -log CNOT success rates, and the pipeline ends
	// with a fidelity pass filling Result.EstimatedSuccess and
	// Result.Makespan from the same data.
	Calibration *device.Calibration
	// CostModel overrides the cost policy derived from Calibration:
	// device.Uniform{} compiles exactly like a calibration-less run (byte-
	// identical output) while still reporting calibrated fidelity stats —
	// the control arm of every noise-aware comparison.
	CostModel device.CostModel
	// NoiseWeight is the legacy function-valued noise hook, kept for ad-hoc
	// weight landscapes: when non-nil, routing and placement weigh edges by
	// weight(a, b). Such options have no CacheKey; prefer Calibration.
	// Setting it together with CostModel is an error.
	NoiseWeight func(a, b int) float64
	// Templates, when non-nil, is consulted before the pipeline runs: a
	// source holding precompiled fragments for this (input, device, option)
	// combination can serve or stitch the result without paying the full
	// pipeline (see internal/template). The library's content digest is part
	// of CacheKey, so stitched artifacts can never alias full-pipeline ones
	// compiled without the library.
	Templates TemplateSource
}

// TemplateSource serves precompiled template fragments. The interface lives
// in the compiler so the template package depends on the compiler, not the
// other way around.
type TemplateSource interface {
	// Digest identifies the library content and fragment policy; it is
	// folded into Options.CacheKey so artifact stores never alias stitched
	// and unstitched compiles.
	Digest() string
	// Stitch attempts to produce the compiled result for input from
	// precompiled fragments. The opts it receives have Templates already
	// stripped (so fragment and suffix compiles cannot recurse). ok=false
	// means no fragment applies and the caller runs the full pipeline.
	Stitch(ctx context.Context, input *circuit.Circuit, g *topo.Graph, opts Options) (*Result, bool, error)
}

// costModel resolves the effective cost model: an explicit CostModel wins,
// then the legacy NoiseWeight shim, then the calibration's shared noise
// model, then Uniform (hop counts — the legacy noise-blind behavior).
func (o Options) costModel() (device.CostModel, error) {
	switch {
	case o.CostModel != nil && o.NoiseWeight != nil:
		return nil, fmt.Errorf("compiler: set either CostModel or NoiseWeight, not both")
	case o.CostModel != nil:
		return o.CostModel, nil
	case o.NoiseWeight != nil:
		return device.NewWeightFunc(o.NoiseWeight), nil
	case o.Calibration != nil:
		return device.NoiseFor(o.Calibration), nil
	default:
		return device.Uniform{}, nil
	}
}

// Result carries the compiled program and the bookkeeping needed to verify
// and evaluate it.
type Result struct {
	// Input is the logical circuit as given.
	Input *circuit.Circuit
	// Physical is the final compiled circuit in the {u1,u2,u3,cx} basis on
	// device qubits.
	Physical *circuit.Circuit
	// Initial[v] is the physical qubit logical v starts on; Final[v] where
	// it ends after routing SWAPs. Both cover all device qubits (padding
	// virtual qubits beyond the program's).
	Initial []int
	Final   []int
	// SwapsAdded counts routing SWAPs before their 3-CX expansion.
	SwapsAdded int
	Graph      *topo.Graph
	// Passes records per-pass wall-clock and gate-count metrics for the
	// pipeline that produced this result. Cached front passes contribute
	// the metrics of the run that populated the cache.
	Passes []PassMetric
	// ScheduledDuration is non-zero when the pipeline included a Schedule
	// pass: the ASAP duration of the compiled circuit.
	ScheduledDuration float64
	// CostModel names the cost model that drove layout and routing
	// ("uniform", "noise:<calibration>", "custom").
	CostModel string
	// EstimatedSuccess and Makespan are the fidelity block, filled when
	// Options.Calibration is set: the closed-form per-edge/per-qubit success
	// probability of one execution and the ASAP makespan (us) of the
	// compiled circuit under the calibration's gate times.
	EstimatedSuccess float64
	Makespan         float64
}

// TwoQubitGates returns the compiled two-qubit gate count, the paper's
// hardware-independent quality metric.
func (r *Result) TwoQubitGates() int { return r.Physical.TwoQubitCount() }

// Compile runs the selected pipeline on the input circuit for the device.
// The pipeline is assembled from named passes (see passmgr.go) and every
// stage's wall-clock and gate-count deltas land in Result.Passes.
func Compile(input *circuit.Circuit, g *topo.Graph, opts Options) (*Result, error) {
	return compileFrom(context.Background(), input, nil, nil, g, opts)
}

// CompileContext is Compile with cancellation: the pipeline checks ctx
// between passes and aborts with the context's error instead of starting the
// next stage. The serving layer uses it so a draining daemon stops burning
// CPU on compilations whose results nobody will read.
func CompileContext(ctx context.Context, input *circuit.Circuit, g *topo.Graph, opts Options) (*Result, error) {
	return compileFrom(ctx, input, nil, nil, g, opts)
}

func initialLayout(c *circuit.Circuit, g *topo.Graph, opts Options, cm device.CostModel) (*layout.Layout, error) {
	if opts.InitialLayout != nil {
		v2p := make([]int, g.NumQubits())
		used := make([]bool, g.NumQubits())
		if len(opts.InitialLayout) > g.NumQubits() {
			return nil, fmt.Errorf("compiler: initial layout longer than device")
		}
		for v, p := range opts.InitialLayout {
			if p < 0 || p >= g.NumQubits() || used[p] {
				return nil, fmt.Errorf("compiler: bad initial layout entry %d->%d", v, p)
			}
			v2p[v] = p
			used[p] = true
		}
		next := 0
		for v := len(opts.InitialLayout); v < g.NumQubits(); v++ {
			for used[next] {
				next++
			}
			v2p[v] = next
			used[next] = true
		}
		return layout.FromVirtualToPhys(v2p)
	}
	switch opts.Placement {
	case PlaceGreedy:
		// Under a noise cost model, placement is noise-aware too (§4's
		// pairing of noise-aware mapping and routing): distances come from
		// the model's memoized weighted-path oracle. Uniform's nil oracle
		// selects the hop-count tables — the legacy path, bit for bit.
		return layout.GreedyWeighted(c, g, cm.Oracle(g))
	case PlaceRandom:
		return layout.Random(g.NumQubits(), rand.New(rand.NewSource(opts.Seed))), nil
	default:
		return layout.Identity(g.NumQubits()), nil
	}
}

// pickRouter builds the routing pass for the selected strategy; trioAware
// is set by the Trios pipeline, whose router must accept intact CCX gates.
// Every router receives the cost model's edge weights and its memoized
// weighted-path tables; under Uniform both are nil and every router runs its
// legacy hop-count code path unchanged.
func pickRouter(opts Options, trioAware bool, cm device.CostModel, g *topo.Graph) (route.Router, error) {
	weight := cm.Weight()
	var oracle *topo.WeightedOracle
	if weight != nil {
		oracle = cm.Oracle(g)
	}
	switch opts.Router {
	case RouteDirect:
		if trioAware {
			return &route.Trios{Seed: opts.Seed, Weight: weight, Oracle: oracle}, nil
		}
		return &route.Baseline{Seed: opts.Seed, Weight: weight, Oracle: oracle}, nil
	case RouteStochastic:
		return &route.Stochastic{Seed: opts.Seed, TrioAware: trioAware, Weight: weight, Oracle: oracle}, nil
	case RouteLookahead:
		return &route.Lookahead{Seed: opts.Seed, TrioAware: trioAware, Weight: weight, Oracle: oracle}, nil
	}
	return nil, fmt.Errorf("compiler: unknown router kind %d", int(opts.Router))
}

// Verify checks that a compiled result respects the device coupling graph:
// every cx acts on a connected pair and only basis gates appear.
func (r *Result) Verify() error {
	for i, g := range r.Physical.Gates {
		switch g.Name {
		case circuit.U1, circuit.U2, circuit.U3, circuit.Measure, circuit.Barrier:
		case circuit.CX:
			if !r.Graph.Connected(g.Qubits[0], g.Qubits[1]) {
				return fmt.Errorf("compiler: gate %d cx(%d,%d) not on a coupling of %s", i, g.Qubits[0], g.Qubits[1], r.Graph.Name())
			}
		default:
			return fmt.Errorf("compiler: gate %d has non-basis gate %v", i, g.Name)
		}
	}
	return nil
}
