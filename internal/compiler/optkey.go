// Cache-key-stable option fingerprints: the serving layer content-addresses
// compiled artifacts by (canonical QASM, device, option set), so every option
// that can change the compiled output must serialize into a canonical string
// — and options that cannot (function-valued noise weights) must refuse a key
// rather than silently aliasing distinct compilations.
package compiler

import (
	"fmt"
	"strings"

	"trios/internal/decompose"
	"trios/internal/device"
)

// The Parse* helpers are the single string→enum mapping shared by every
// user-facing surface (the trios CLI flags and the triosd wire protocol), so
// a daemon request stays a transliteration of a command line: the two can
// never accept different vocabularies.

// ParsePipeline resolves a pipeline name: trios, baseline, or groups.
func ParsePipeline(s string) (Pipeline, error) {
	switch s {
	case "trios":
		return TriosPipeline, nil
	case "baseline":
		return Conventional, nil
	case "groups":
		return GroupsPipeline, nil
	}
	return 0, fmt.Errorf("compiler: unknown pipeline %q (want trios, baseline, or groups)", s)
}

// ParseRouter resolves a routing strategy: direct, stochastic, or lookahead.
func ParseRouter(s string) (RouterKind, error) {
	switch s {
	case "direct":
		return RouteDirect, nil
	case "stochastic":
		return RouteStochastic, nil
	case "lookahead":
		return RouteLookahead, nil
	}
	return 0, fmt.Errorf("compiler: unknown router %q (want direct, stochastic, or lookahead)", s)
}

// ParsePlacement resolves an initial-mapping strategy: greedy, identity, or
// random.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "greedy":
		return PlaceGreedy, nil
	case "identity":
		return PlaceIdentity, nil
	case "random":
		return PlaceRandom, nil
	}
	return 0, fmt.Errorf("compiler: unknown placement %q (want greedy, identity, or random)", s)
}

// ParseCost resolves the cost-model vocabulary shared by the trios -cost
// flag and the triosd wire protocol: "" and "noise" select the calibration's
// noise model (returned as nil — Options derives it from Calibration),
// "uniform" the noise-blind control arm.
func ParseCost(s string) (device.CostModel, error) {
	switch s {
	case "", "noise":
		return nil, nil
	case "uniform":
		return device.Uniform{}, nil
	}
	return nil, fmt.Errorf("compiler: unknown cost model %q (want noise or uniform)", s)
}

// ResolveCalibration maps the shared calibration/cost request vocabulary to
// compiler options: name resolves against the device registry, cost through
// ParseCost. An empty name means no calibration, in which case a cost
// selection is rejected (there is nothing for it to act on).
func ResolveCalibration(name, cost string) (*device.Calibration, device.CostModel, error) {
	if name == "" {
		if cost != "" {
			return nil, nil, fmt.Errorf("compiler: cost model %q requires a calibration", cost)
		}
		return nil, nil, nil
	}
	cal, err := device.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	cm, err := ParseCost(cost)
	if err != nil {
		return nil, nil, err
	}
	return cal, cm, nil
}

// ParseOptimizer resolves an optimization engine: saturate (the rewrite
// engine, also the default for "") or legacy (the golden-arm cancel loop).
func ParseOptimizer(s string) (OptimizerKind, error) {
	switch s {
	case "", "saturate":
		return OptimizerSaturate, nil
	case "legacy":
		return OptimizerLegacy, nil
	}
	return 0, fmt.Errorf("compiler: unknown optimizer %q (want saturate or legacy)", s)
}

// ParseToffoli resolves a Toffoli decomposition mode: auto, 6, or 8.
func ParseToffoli(s string) (decompose.ToffoliMode, error) {
	switch s {
	case "auto":
		return decompose.Auto, nil
	case "6":
		return decompose.Six, nil
	case "8":
		return decompose.Eight, nil
	}
	return 0, fmt.Errorf("compiler: unknown toffoli mode %q (want auto, 6, or 8)", s)
}

func (p Placement) String() string {
	switch p {
	case PlaceGreedy:
		return "greedy"
	case PlaceRandom:
		return "random"
	}
	return "identity"
}

// CacheKey returns a canonical fingerprint of every option that can affect
// the compiled circuit. Two Options values with equal CacheKeys compile any
// given input to bit-identical results (compilation is deterministic in the
// seed), which is what lets a compile cache serve one job's artifact for
// another. It deliberately over-segments — a seed is included even for
// configurations that never consume it — because a key that is too fine
// only costs hit rate, while one too coarse serves wrong answers.
//
// The cost segment carries the resolved cost model's canonical identity (the
// calibration's content digest for Noise), and the cal segment the digest of
// the calibration feeding the fidelity stats — so artifacts compiled or
// evaluated under different calibrations can never alias, while a Uniform
// compile with and without a calibration (identical QASM, different stats
// block) also key apart.
//
// Options carrying a NoiseWeight function have no canonical serialization
// and return an error: callers must compile those uncached.
func (o Options) CacheKey() (string, error) {
	if o.NoiseWeight != nil {
		return "", fmt.Errorf("compiler: options with a NoiseWeight function have no cache key")
	}
	cm, err := o.costModel()
	if err != nil {
		return "", err
	}
	costKey, err := cm.CacheKey()
	if err != nil {
		return "", fmt.Errorf("compiler: options have no cache key: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline=%s;router=%s;toffoli=%s;placement=%s;seed=%d;optimize=%t;optimizer=%s;layout=",
		o.Pipeline, o.Router, o.Mode, o.Placement, o.Seed, o.Optimize, o.Optimizer)
	if o.InitialLayout == nil {
		b.WriteString("none")
	} else {
		for i, p := range o.InitialLayout {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", p)
		}
	}
	fmt.Fprintf(&b, ";cost=%s;cal=", costKey)
	if o.Calibration == nil {
		b.WriteString("none")
	} else {
		b.WriteString(o.Calibration.Digest())
	}
	b.WriteString(";templates=")
	if o.Templates == nil {
		b.WriteString("none")
	} else {
		b.WriteString(o.Templates.Digest())
	}
	return b.String(), nil
}
