package compiler

import (
	"context"
	"fmt"
	"testing"

	"trios/internal/benchmarks"
	"trios/internal/decompose"
	"trios/internal/topo"
)

func TestCacheKeyStability(t *testing.T) {
	a := Options{Pipeline: TriosPipeline, Router: RouteDirect, Placement: PlaceGreedy, Seed: 7}
	b := a
	ka, err := a.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("equal options produced different keys:\n%s\n%s", ka, kb)
	}
	// Every output-affecting field must move the key.
	variants := []Options{}
	v := a
	v.Pipeline = Conventional
	variants = append(variants, v)
	v = a
	v.Router = RouteStochastic
	variants = append(variants, v)
	v = a
	v.Mode = 2
	variants = append(variants, v)
	v = a
	v.Placement = PlaceRandom
	variants = append(variants, v)
	v = a
	v.Seed = 8
	variants = append(variants, v)
	v = a
	v.Optimize = true
	variants = append(variants, v)
	v = a
	v.InitialLayout = []int{0, 1, 2}
	variants = append(variants, v)
	seen := map[string]bool{ka: true}
	for i, o := range variants {
		k, err := o.CacheKey()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if seen[k] {
			t.Fatalf("variant %d collided with another key: %s", i, k)
		}
		seen[k] = true
	}
	// Function-valued options have no canonical form.
	v = a
	v.NoiseWeight = func(x, y int) float64 { return 1 }
	if _, err := v.CacheKey(); err == nil {
		t.Fatal("expected an error for NoiseWeight options")
	}
}

// TestParseHelpersRoundTrip pins the shared string→enum vocabulary to the
// enums' own String forms where they exist, and rejects unknowns.
func TestParseHelpersRoundTrip(t *testing.T) {
	for _, p := range []Pipeline{Conventional, TriosPipeline, GroupsPipeline} {
		got, err := ParsePipeline(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePipeline(%q) = %v, %v", p.String(), got, err)
		}
	}
	for _, r := range []RouterKind{RouteDirect, RouteStochastic, RouteLookahead} {
		got, err := ParseRouter(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRouter(%q) = %v, %v", r.String(), got, err)
		}
	}
	for _, pl := range []Placement{PlaceGreedy, PlaceIdentity, PlaceRandom} {
		got, err := ParsePlacement(pl.String())
		if err != nil || got != pl {
			t.Errorf("ParsePlacement(%q) = %v, %v", pl.String(), got, err)
		}
	}
	for name, want := range map[string]decompose.ToffoliMode{"auto": decompose.Auto, "6": decompose.Six, "8": decompose.Eight} {
		got, err := ParseToffoli(name)
		if err != nil || got != want {
			t.Errorf("ParseToffoli(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePipeline("warp"); err == nil {
		t.Error("ParsePipeline accepted garbage")
	}
	if _, err := ParseRouter(""); err == nil {
		t.Error("ParseRouter accepted empty")
	}
	if _, err := ParsePlacement("astrology"); err == nil {
		t.Error("ParsePlacement accepted garbage")
	}
	if _, err := ParseToffoli("7"); err == nil {
		t.Error("ParseToffoli accepted garbage")
	}
}

func TestCompileContextCancelled(t *testing.T) {
	b, err := benchmarks.ByName("grovers-9")
	if err != nil {
		t.Fatal(err)
	}
	input, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = CompileContext(ctx, input, topo.Johannesburg(), Options{Pipeline: TriosPipeline, Placement: PlaceGreedy, Seed: 1})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if got := context.Cause(ctx); got != context.Canceled {
		t.Fatalf("cause = %v", got)
	}
}

// TestServeMatchesCompile feeds jobs through the persistent pool and checks
// every result is bit-identical to a direct Compile of the same job.
func TestServeMatchesCompile(t *testing.T) {
	bench, err := benchmarks.ByName("cnx_dirty-11")
	if err != nil {
		t.Fatal(err)
	}
	input, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Johannesburg()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan Job)
	pool := &Batch{Workers: 4}
	out := pool.Serve(ctx, in)

	const n = 12
	go func() {
		for i := 0; i < n; i++ {
			opts := Options{Pipeline: TriosPipeline, Placement: PlaceGreedy, Seed: int64(i % 3)}
			in <- Job{ID: fmt.Sprintf("job-%d", i), Input: input, Graph: g, Opts: opts}
		}
		close(in)
	}()

	got := 0
	for jr := range out {
		if jr.Err != nil {
			t.Fatalf("%s: %v", jr.Job.ID, jr.Err)
		}
		if jr.Index != -1 {
			t.Fatalf("%s: Serve results must carry Index -1, got %d", jr.Job.ID, jr.Index)
		}
		want, err := Compile(jr.Job.Input, jr.Job.Graph, jr.Job.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if jr.Result.Physical.String() != want.Physical.String() {
			t.Fatalf("%s: served result differs from direct Compile", jr.Job.ID)
		}
		got++
	}
	if got != n {
		t.Fatalf("got %d results, want %d", got, n)
	}
}

// TestFrontCacheBounded checks the Serve pool's front cache resets instead
// of growing without bound: its keys include input pointer identity, which
// never repeats across independently-parsed daemon requests.
func TestFrontCacheBounded(t *testing.T) {
	bench, err := benchmarks.ByName("bv-20")
	if err != nil {
		t.Fatal(err)
	}
	fc := newFrontCache()
	fc.max = 4
	for i := 0; i < 20; i++ {
		input, err := bench.Build() // fresh pointer each time, like a parsed request
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := fc.get(input, "", Options{Pipeline: TriosPipeline}); err != nil {
			t.Fatal(err)
		}
	}
	fc.mu.Lock()
	n := len(fc.m)
	fc.mu.Unlock()
	if n > 4 {
		t.Fatalf("front cache grew to %d entries, max is 4", n)
	}
}

// TestFrontCacheContentKey checks a Job.FrontKey lets distinct input
// pointers share one front computation — and that the shared output is the
// same prepared circuit object.
func TestFrontCacheContentKey(t *testing.T) {
	bench, err := benchmarks.ByName("cnx_dirty-11")
	if err != nil {
		t.Fatal(err)
	}
	in1, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	in2, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in1 == in2 {
		t.Fatal("test premise broken: Build returned a shared pointer")
	}
	fc := newFrontCache()
	opts := Options{Pipeline: TriosPipeline}
	c1, _, cached1, err := fc.get(in1, "digest-A", opts)
	if err != nil || cached1 {
		t.Fatalf("first get: cached=%v err=%v", cached1, err)
	}
	c2, _, cached2, err := fc.get(in2, "digest-A", opts)
	if err != nil || !cached2 {
		t.Fatalf("second get: cached=%v err=%v", cached2, err)
	}
	if c1 != c2 {
		t.Fatal("content-keyed gets returned different prepared circuits")
	}
	// A different content key must not alias.
	_, _, cached3, err := fc.get(in2, "digest-B", opts)
	if err != nil || cached3 {
		t.Fatalf("distinct content key: cached=%v err=%v", cached3, err)
	}
}

// TestServeCancelStops checks the pool exits when its context is cancelled
// even though the feed channel stays open.
func TestServeCancelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Job)
	out := (&Batch{Workers: 2}).Serve(ctx, in)
	cancel()
	for range out {
	}
}
