package obs

import (
	"encoding/hex"
	"fmt"
	"strconv"
)

// TraceparentHeader is the W3C Trace Context request header carrying
// "00-<trace-id>-<parent-id>-<flags>"; TraceHeader is the response header
// echoing the 32-hex trace ID so clients can join their observed latency to
// the server-side span tree at /debug/traces.
const (
	TraceparentHeader = "traceparent"
	TraceHeader       = "X-Trios-Trace"
)

// FormatSpanID renders a span ID in its 16-hex wire form.
func FormatSpanID(id uint64) string { return fmt.Sprintf("%016x", id) }

// Traceparent renders the W3C header value for this span context, always
// with version 00 and the sampled flag set.
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID.String() + "-" + FormatSpanID(sc.SpanID) + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. It accepts version
// 00 (and, per spec, any higher version whose prefix matches the 00 layout),
// and rejects malformed lengths, non-hex digits, and the all-zero trace and
// span IDs. ok=false means "start a fresh trace", never an error.
func ParseTraceparent(s string) (sc SpanContext, ok bool) {
	// Layout: 2 (version) + 1 + 32 (trace id) + 1 + 16 (parent id) + 1 + 2
	// (flags) = 55 bytes minimum; later versions may append "-..." suffixes.
	if len(s) < 55 {
		return SpanContext{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	version := s[0:2]
	if !isHex(version) || version == "ff" {
		return SpanContext{}, false
	}
	if version == "00" && len(s) != 55 {
		return SpanContext{}, false
	}
	if len(s) > 55 && s[55] != '-' {
		return SpanContext{}, false
	}
	traceHex, parentHex, flags := s[3:35], s[36:52], s[53:55]
	// The spec mandates lowercase hex; isHex enforces it (DecodeString would
	// also accept uppercase).
	if !isHex(flags) || !isHex(traceHex) || !isHex(parentHex) {
		return SpanContext{}, false
	}
	raw, err := hex.DecodeString(traceHex)
	if err != nil {
		return SpanContext{}, false
	}
	copy(sc.TraceID[:], raw)
	if sc.TraceID.IsZero() {
		return SpanContext{}, false
	}
	parent, err := strconv.ParseUint(parentHex, 16, 64)
	if err != nil || parent == 0 {
		return SpanContext{}, false
	}
	sc.SpanID = parent
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
