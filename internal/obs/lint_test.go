package obs

import (
	"strings"
	"testing"
)

func lintString(s string) []string { return LintExposition(strings.NewReader(s)) }

func TestLintCleanExposition(t *testing.T) {
	clean := `# HELP triosd_requests_total requests
# TYPE triosd_requests_total counter
triosd_requests_total{route="/v1/compile",code="200"} 41
triosd_requests_total{route="/v1/compile",code="503"} 2
# TYPE triosd_latency_seconds histogram
triosd_latency_seconds_bucket{le="0.001"} 3
triosd_latency_seconds_bucket{le="0.01"} 10
triosd_latency_seconds_bucket{le="+Inf"} 12
triosd_latency_seconds_sum 0.42
triosd_latency_seconds_count 12
# TYPE go_goroutines gauge
go_goroutines 14
`
	if problems := lintString(clean); len(problems) != 0 {
		t.Fatalf("clean exposition flagged: %v", problems)
	}
}

func TestLintDuplicateSeries(t *testing.T) {
	bad := `# TYPE a counter
a{x="1"} 1
a{x="1"} 2
`
	problems := lintString(bad)
	if len(problems) != 1 || !strings.Contains(problems[0], "duplicate series") {
		t.Fatalf("want one duplicate-series problem, got %v", problems)
	}
}

func TestLintDuplicateSeriesLabelOrderInsensitive(t *testing.T) {
	bad := `# TYPE a counter
a{x="1",y="2"} 1
a{y="2",x="1"} 2
`
	if problems := lintString(bad); len(problems) != 1 {
		t.Fatalf("reordered labels not seen as duplicate: %v", problems)
	}
}

func TestLintUnsortedBuckets(t *testing.T) {
	bad := `# TYPE h histogram
h_bucket{le="0.01"} 5
h_bucket{le="0.001"} 3
h_bucket{le="+Inf"} 9
h_count 9
`
	problems := lintString(bad)
	found := false
	for _, p := range problems {
		if strings.Contains(p, "unsorted buckets") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unsorted buckets not flagged: %v", problems)
	}
}

func TestLintNonCumulativeBuckets(t *testing.T) {
	bad := `# TYPE h histogram
h_bucket{le="0.001"} 5
h_bucket{le="0.01"} 3
h_bucket{le="+Inf"} 5
h_count 5
`
	problems := lintString(bad)
	found := false
	for _, p := range problems {
		if strings.Contains(p, "non-cumulative") {
			found = true
		}
	}
	if !found {
		t.Fatalf("non-cumulative buckets not flagged: %v", problems)
	}
}

func TestLintMissingInfBucket(t *testing.T) {
	bad := `# TYPE h histogram
h_bucket{le="0.001"} 5
h_count 5
`
	problems := lintString(bad)
	found := false
	for _, p := range problems {
		if strings.Contains(p, `+Inf`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing +Inf not flagged: %v", problems)
	}
}

func TestLintInfBucketCountMismatch(t *testing.T) {
	bad := `# TYPE h histogram
h_bucket{le="+Inf"} 5
h_count 7
`
	problems := lintString(bad)
	found := false
	for _, p := range problems {
		if strings.Contains(p, "!= _count") {
			found = true
		}
	}
	if !found {
		t.Fatalf("+Inf/_count mismatch not flagged: %v", problems)
	}
}

func TestLintInterleavedFamilies(t *testing.T) {
	bad := `# TYPE a counter
a 1
# TYPE b counter
b 1
a 2
`
	problems := lintString(bad)
	found := false
	for _, p := range problems {
		if strings.Contains(p, "interleaved") {
			found = true
		}
	}
	if !found {
		t.Fatalf("interleaving not flagged: %v", problems)
	}
}

func TestLintMalformedLines(t *testing.T) {
	for _, bad := range []string{
		"# TYPE a counter\na{x=1} 1\n",             // unquoted label value
		"# TYPE a counter\na{x=\"1\"} \n",          // no value
		"# TYPE a counter\na{x=\"1\"} zebra\n",     // non-float value
		"# TYPE a counter\na{x=\"1\",x=\"2\"} 1\n", // duplicate label key
		"# TYPE a counter\na{x=\"1\" 1\n",          // unterminated label set
		"# TYPE a counter\n{x=\"1\"} 1\n",          // no metric name
	} {
		if problems := lintString(bad); len(problems) == 0 {
			t.Errorf("malformed exposition passed lint:\n%s", bad)
		}
	}
}

func TestLintUntypedSample(t *testing.T) {
	problems := lintString("a 1\n")
	if len(problems) != 1 || !strings.Contains(problems[0], "no preceding # TYPE") {
		t.Fatalf("untyped sample: %v", problems)
	}
}

func TestLintLabelEscapes(t *testing.T) {
	ok := "# TYPE a counter\na{x=\"line\\nbreak \\\"q\\\" back\\\\slash\"} 1\n"
	if problems := lintString(ok); len(problems) != 0 {
		t.Fatalf("valid escapes flagged: %v", problems)
	}
	if problems := lintString("# TYPE a counter\na{x=\"bad\\q\"} 1\n"); len(problems) == 0 {
		t.Fatal("invalid escape passed")
	}
}
