package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux returns the opt-in debug surface both daemons serve on their
// -debug-addr listener: net/http/pprof under /debug/pprof/ plus the trace
// ring at /debug/traces. It is deliberately a separate mux on a separate
// listener — profiling endpoints expose internals and can stall the world,
// so they never share the serving port.
func DebugMux(t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/traces", t.DebugHandler())
	return mux
}
