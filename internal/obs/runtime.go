package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"strconv"
)

// gcPauseBounds are the `le` upper bounds (seconds) the runtime's GC pause
// histogram is downsampled onto for exposition: the runtime publishes
// hundreds of fine-grained buckets, far more than a scrape needs.
var gcPauseBounds = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// runtimeSamples names the runtime/metrics series exported on /metrics.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/objects:objects",
	"/gc/cycles/total:gc-cycles",
	"/sched/pauses/total/gc:seconds",
}

// WriteRuntimeMetrics renders Go runtime health — goroutine count, live heap
// bytes and objects, GC cycle count, and the stop-the-world GC pause
// histogram — in Prometheus text exposition format. Both daemons append it
// to their /metrics output so a scrape sees process health next to serving
// counters.
func WriteRuntimeMetrics(w io.Writer) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)

	writeGauge := func(name string, v uint64) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
	}
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			writeGauge("go_goroutines", s.Value.Uint64())
		case "/memory/classes/heap/objects:bytes":
			writeGauge("go_heap_live_bytes", s.Value.Uint64())
		case "/gc/heap/objects:objects":
			writeGauge("go_heap_objects", s.Value.Uint64())
		case "/gc/cycles/total:gc-cycles":
			fmt.Fprintf(w, "# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n", s.Value.Uint64())
		case "/sched/pauses/total/gc:seconds":
			writePauseHistogram(w, s.Value.Float64Histogram())
		}
	}
}

// writePauseHistogram downsamples the runtime's GC pause histogram onto
// gcPauseBounds. Runtime bucket i spans [Buckets[i], Buckets[i+1]); a bucket
// is counted under the first bound at or above its upper edge, so the
// rendered cumulative counts are exact lower bounds and +Inf carries the
// true total. The _sum is approximated from bucket midpoints (the runtime
// histogram does not retain a sum).
func writePauseHistogram(w io.Writer, h *metrics.Float64Histogram) {
	if h == nil {
		return
	}
	cum := make([]uint64, len(gcPauseBounds))
	var total uint64
	var sum float64
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		total += count
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := midpoint(lo, hi)
		sum += mid * float64(count)
		for j, bound := range gcPauseBounds {
			if hi <= bound {
				cum[j] += count
				break
			}
		}
	}
	// Make the buckets cumulative (le convention).
	for j := 1; j < len(cum); j++ {
		cum[j] += cum[j-1]
	}
	fmt.Fprintf(w, "# TYPE go_gc_pause_seconds histogram\n")
	for j, bound := range gcPauseBounds {
		fmt.Fprintf(w, "go_gc_pause_seconds_bucket{le=%q} %d\n", strconv.FormatFloat(bound, 'g', -1, 64), cum[j])
	}
	fmt.Fprintf(w, "go_gc_pause_seconds_bucket{le=\"+Inf\"} %d\n", total)
	fmt.Fprintf(w, "go_gc_pause_seconds_sum %g\n", sum)
	fmt.Fprintf(w, "go_gc_pause_seconds_count %d\n", total)
}

// midpoint picks a representative value for a histogram bucket, tolerating
// the runtime's +/-Inf edge buckets.
func midpoint(lo, hi float64) float64 {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return (lo + hi) / 2
	}
}
