package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// Format selects the line encoding.
type Format int

const (
	// FormatLogfmt writes `time=... level=info msg="..." k=v` lines — the
	// default, and grep-compatible with the old log.Printf output because
	// the full message text survives inside msg.
	FormatLogfmt Format = iota
	// FormatJSON writes one JSON object per line.
	FormatJSON
)

// ParseFormat maps a -log-format flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "logfmt", "":
		return FormatLogfmt, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatLogfmt, fmt.Errorf("unknown log format %q (want logfmt|json)", s)
}

// Logger is a leveled structured logger. Lines carry a timestamp, the level,
// the message, the logger's base attributes (set by With), then per-call
// key/value pairs. A nil *Logger discards everything, so optional logging
// call sites need no guards. Loggers are safe for concurrent use; With
// shares the parent's writer and lock.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level Level
	json  bool
	base  []Attr
}

// NewLogger builds a logger writing to w at the given level and format.
func NewLogger(w io.Writer, level Level, format Format) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, json: format == FormatJSON}
}

// With returns a logger that prepends the given key/value pairs (same
// conventions as the logging methods) to every line.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.base = append(append([]Attr(nil), l.base...), attrs(kv)...)
	return &child
}

// Enabled reports whether a line at level would be written — the guard for
// callers that build expensive attributes.
func (l *Logger) Enabled(level Level) bool { return l != nil && level >= l.level }

// Debug logs at LevelDebug. kv alternates keys and values; values are
// rendered with fmt.Sprint.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// attrs pairs up a kv list. An odd trailing key gets a "(MISSING)" value so
// a mistake is visible in the output instead of dropped.
func attrs(kv []any) []Attr {
	if len(kv) == 0 {
		return nil
	}
	out := make([]Attr, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprint(kv[i])
		value := "(MISSING)"
		if i+1 < len(kv) {
			value = fmt.Sprint(kv[i+1])
		}
		out = append(out, Attr{Key: key, Value: value})
	}
	return out
}

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	line := make([]byte, 0, 128)
	ts := time.Now().UTC().Format("2006-01-02T15:04:05.000Z")
	all := append(append([]Attr(nil), l.base...), attrs(kv)...)
	if l.json {
		line = append(line, `{"time":`...)
		line = appendJSONString(line, ts)
		line = append(line, `,"level":`...)
		line = appendJSONString(line, level.String())
		line = append(line, `,"msg":`...)
		line = appendJSONString(line, msg)
		for _, a := range all {
			line = append(line, ',')
			line = appendJSONString(line, a.Key)
			line = append(line, ':')
			line = appendJSONString(line, a.Value)
		}
		line = append(line, '}', '\n')
	} else {
		line = append(line, "time="...)
		line = append(line, ts...)
		line = append(line, " level="...)
		line = append(line, level.String()...)
		line = append(line, " msg="...)
		line = appendLogfmtValue(line, msg)
		for _, a := range all {
			line = append(line, ' ')
			line = append(line, logfmtKey(a.Key)...)
			line = append(line, '=')
			line = appendLogfmtValue(line, a.Value)
		}
		line = append(line, '\n')
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(line)
}

// logfmtKey strips the characters that would break logfmt key syntax.
func logfmtKey(k string) string {
	if !strings.ContainsAny(k, " =\"\n") {
		return k
	}
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '=', '"', '\n':
			return '_'
		}
		return r
	}, k)
}

// appendLogfmtValue appends v, quoting when it contains logfmt metacharacters.
func appendLogfmtValue(line []byte, v string) []byte {
	if v != "" && !strings.ContainsAny(v, " =\"\n\t") {
		return append(line, v...)
	}
	return appendJSONString(line, v)
}

// appendJSONString appends s as a JSON string literal.
func appendJSONString(line []byte, s string) []byte {
	enc, err := json.Marshal(s)
	if err != nil { // cannot happen for a string; keep the line well-formed
		return append(line, `"?"`...)
	}
	return append(line, enc...)
}
