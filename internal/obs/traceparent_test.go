package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer()
	_, s := tr.StartSpan(context.Background(), "x")
	header := s.Context().Traceparent()
	if !strings.HasPrefix(header, "00-") || !strings.HasSuffix(header, "-01") || len(header) != 55 {
		t.Fatalf("malformed traceparent %q", header)
	}
	sc, ok := ParseTraceparent(header)
	if !ok {
		t.Fatalf("own traceparent %q rejected", header)
	}
	if sc.TraceID != s.Context().TraceID || sc.SpanID != s.Context().SpanID {
		t.Fatalf("round trip lost identity: %+v vs %+v", sc, s.Context())
	}
	s.End()
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",          // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // version 00 with trailing data
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",       // zero span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",       // uppercase hex
		"0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // non-hex version
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7xx-01",       // short trace id
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("accepted malformed traceparent %q", h)
		}
	}
}

func TestParseTraceparentAcceptsFutureVersion(t *testing.T) {
	h := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-futurestuff"
	sc, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("future-version traceparent %q rejected", h)
	}
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id %s", sc.TraceID.String())
	}
	if FormatSpanID(sc.SpanID) != "00f067aa0ba902b7" {
		t.Fatalf("span id %s", FormatSpanID(sc.SpanID))
	}
}
