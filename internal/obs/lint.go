package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// LintExposition parses Prometheus text exposition format and returns every
// format violation found (empty slice = clean). It enforces what a scraper
// actually depends on:
//
//   - sample lines parse as `name{labels} value` with a valid metric name, a
//     well-formed label set (valid keys, quoted escaped values, no duplicate
//     keys), and a float value
//   - no duplicate series: (name, canonical label set) appears at most once
//   - one # TYPE per metric family, declared before its first sample, with
//     the family's samples contiguous (no interleaving between families)
//   - histogram buckets: within one series group, `le` bounds strictly
//     ascending, counts non-decreasing (cumulative convention), ending at a
//     le="+Inf" bucket that matches the family's _count sample
//
// The serving and fleet /metrics handlers are lint-tested against it so a
// malformed or duplicated series fails CI instead of a scrape.
func LintExposition(r io.Reader) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	typed := make(map[string]string)    // family -> declared TYPE
	familyDone := make(map[string]bool) // family -> samples seen and family left
	seen := make(map[string]bool)       // name + canonical labels -> present
	counts := make(map[string]float64)  // histogram family -> _count value (keyed with labels)

	// histogram bucket tracking: family+non-le labels -> bucket run state
	type bucketRun struct {
		lastLe    float64
		lastCount float64
		infCount  float64
		sawInf    bool
	}
	buckets := make(map[string]*bucketRun)

	currentFamily := ""
	lineNo := 0
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				family := fields[2]
				if _, dup := typed[family]; dup {
					addf("line %d: duplicate # TYPE for family %s", lineNo, family)
				}
				if familyDone[family] {
					addf("line %d: family %s re-opened after other families' samples (interleaved exposition)", lineNo, family)
				}
				if len(fields) < 4 {
					addf("line %d: # TYPE %s missing a kind", lineNo, family)
					typed[family] = ""
				} else {
					typed[family] = fields[3]
				}
				if currentFamily != "" && currentFamily != family {
					familyDone[currentFamily] = true
				}
				currentFamily = family
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			addf("line %d: %v", lineNo, err)
			continue
		}
		family := familyOf(name, typed)
		if _, ok := typed[family]; !ok {
			addf("line %d: sample %s has no preceding # TYPE for family %s", lineNo, name, family)
			typed[family] = "untyped"
		}
		if familyDone[family] {
			addf("line %d: sample %s appears after family %s was left (interleaved exposition)", lineNo, name, family)
		}
		if currentFamily != "" && family != currentFamily {
			familyDone[currentFamily] = true
		}
		currentFamily = family

		key := name + canonicalLabels(labels)
		if seen[key] {
			addf("line %d: duplicate series %s%s", lineNo, name, canonicalLabels(labels))
		}
		seen[key] = true

		if typed[family] == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					addf("line %d: histogram bucket %s missing le label", lineNo, name)
					continue
				}
				groupKey := name + canonicalLabels(withoutLe(labels))
				run := buckets[groupKey]
				if run == nil {
					run = &bucketRun{lastLe: negInf()}
					buckets[groupKey] = run
				}
				if run.sawInf {
					addf("line %d: bucket after le=\"+Inf\" in %s", lineNo, groupKey)
				}
				if le == "+Inf" {
					run.sawInf = true
					run.infCount = value
				} else {
					bound, err := strconv.ParseFloat(le, 64)
					if err != nil {
						addf("line %d: unparsable le=%q in %s", lineNo, le, name)
						continue
					}
					if bound <= run.lastLe {
						addf("line %d: unsorted buckets in %s: le=%v after le=%v", lineNo, groupKey, bound, run.lastLe)
					}
					run.lastLe = bound
				}
				if value < run.lastCount {
					addf("line %d: non-cumulative buckets in %s: count %v after %v", lineNo, groupKey, value, run.lastCount)
				}
				run.lastCount = value
			case strings.HasSuffix(name, "_count"):
				counts[strings.TrimSuffix(name, "_count")+canonicalLabels(labels)] = value
			}
		}
	}
	if err := scanner.Err(); err != nil {
		addf("read: %v", err)
	}

	for groupKey, run := range buckets {
		base := strings.TrimSuffix(groupKey[:strings.Index(groupKey+"{", "{")], "_bucket")
		labelPart := ""
		if i := strings.Index(groupKey, "{"); i >= 0 {
			labelPart = groupKey[i:]
		}
		if !run.sawInf {
			problems = append(problems, fmt.Sprintf("histogram %s: no le=\"+Inf\" bucket", groupKey))
			continue
		}
		if count, ok := counts[base+labelPart]; ok && count != run.infCount {
			problems = append(problems, fmt.Sprintf(
				"histogram %s: +Inf bucket %v != _count %v", groupKey, run.infCount, count))
		}
	}
	sort.Strings(problems)
	return problems
}

func negInf() float64 { return -1e308 }

// familyOf strips the histogram/summary sample suffixes so _bucket/_sum/
// _count lines attribute to their declared family.
func familyOf(name string, typed map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if kind, ok := typed[base]; ok && (kind == "histogram" || kind == "summary") {
				return base
			}
		}
	}
	return name
}

// parseSample splits one exposition line into name, labels, and value.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q: no metric name", line)
	}
	name, rest = rest[:i], rest[i:]
	labels = map[string]string{}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("malformed sample %q: unterminated label set", line)
		}
		if err := parseLabels(rest[1:end], labels); err != nil {
			return "", nil, 0, fmt.Errorf("malformed sample %q: %v", line, err)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed sample %q: want value [timestamp] after name", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("malformed sample %q: bad value: %v", line, err)
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return 1e308, nil
	case "-Inf":
		return -1e308, nil
	case "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses `k="v",k2="v2"` into labels, rejecting bad keys,
// unquoted values, invalid escapes, and duplicate keys.
func parseLabels(s string, labels map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return fmt.Errorf("label %q missing =", s)
		}
		key := s[:eq]
		if !isLabelKey(key) {
			return fmt.Errorf("invalid label key %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s value not quoted", key)
		}
		val := strings.Builder{}
		j := 1
		closed := false
		for j < len(s) {
			c := s[j]
			if c == '\\' {
				if j+1 >= len(s) {
					return fmt.Errorf("label %s: dangling escape", key)
				}
				switch s[j+1] {
				case '\\', '"':
					val.WriteByte(s[j+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("label %s: invalid escape \\%c", key, s[j+1])
				}
				j += 2
				continue
			}
			if c == '"' {
				closed = true
				j++
				break
			}
			val.WriteByte(c)
			j++
		}
		if !closed {
			return fmt.Errorf("label %s: unterminated value", key)
		}
		if _, dup := labels[key]; dup {
			return fmt.Errorf("duplicate label key %s", key)
		}
		labels[key] = val.String()
		s = s[j:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("label set: expected , after %s", key)
			}
			s = s[1:]
		}
	}
	return nil
}

// canonicalLabels renders a label set sorted by key, for series identity.
func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func withoutLe(labels map[string]string) map[string]string {
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != "le" {
			out[k] = v
		}
	}
	return out
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func isLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
