// Package obs is the zero-dependency observability layer shared by the
// serving stack: in-process request tracing with W3C traceparent propagation
// (trace.go, traceparent.go), a bounded ring of completed traces served at
// GET /debug/traces (handler.go), a leveled structured logger (log.go), Go
// runtime metrics in Prometheus text exposition format (runtime.go), an
// exposition-format linter that keeps /metrics well-formed (lint.go), and an
// opt-in pprof debug mux (debug.go).
//
// Everything is nil-safe by design: a nil *Tracer hands out nil *Spans, and
// every Span and Logger method is a no-op on a nil receiver, so call sites
// stay unconditional and a daemon started with tracing off pays nothing but
// a pointer test per call.
package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// TraceID is the 128-bit W3C trace identifier shared by every span of one
// request, across processes.
type TraceID [16]byte

// String returns the 32-hex-digit wire form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports the invalid all-zero ID (forbidden by the W3C spec).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// SpanContext is the propagated identity of one span: enough to parent a
// child in another process via the traceparent header.
type SpanContext struct {
	TraceID TraceID
	SpanID  uint64
}

// Attr is one key/value annotation on a span or a log line.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds an Attr (reads better than a struct literal at call sites).
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// SpanData is one finished span as recorded in its trace. IDs are hex
// strings so the JSON form needs no further decoding.
type SpanData struct {
	SpanID     string    `json:"span_id"`
	ParentID   string    `json:"parent_id,omitempty"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNs int64     `json:"duration_ns"`
	Attrs      []Attr    `json:"attrs,omitempty"`
	Err        string    `json:"error,omitempty"`
}

// Duration returns the span's recorded wall-clock cost.
func (sd SpanData) Duration() time.Duration { return time.Duration(sd.DurationNs) }

// maxSpansPerTrace bounds one trace's span list: a runaway instrumentation
// loop degrades to dropped spans (counted on the record), never to unbounded
// memory.
const maxSpansPerTrace = 256

// traceRec accumulates the finished spans of one trace. The record is shared
// by every span of the trace and by the tracer's ring once published, so
// spans that finish after the root (e.g. a write-behind store flush) still
// land in the rendered trace.
type traceRec struct {
	traceID TraceID

	mu      sync.Mutex
	spans   []SpanData
	dropped int
}

func (r *traceRec) append(sd SpanData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= maxSpansPerTrace {
		r.dropped++
		return
	}
	r.spans = append(r.spans, sd)
}

// snapshot copies the record under its lock.
func (r *traceRec) snapshot() ([]SpanData, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanData(nil), r.spans...), r.dropped
}

// publishedTrace is one completed trace in the tracer's retention window:
// the shared record plus the root span's summary, frozen at publish time.
type publishedTrace struct {
	rec  *traceRec
	root SpanData
}

// Tracer owns a process's trace retention: a bounded ring of recent traces
// plus the slowest-N by root duration, both served by DebugHandler. A trace
// is published when its root span ends. The zero value is unusable; use
// NewTracer. A nil *Tracer disables tracing entirely.
type Tracer struct {
	recentCap  int
	slowestCap int

	mu      sync.Mutex
	recent  []*publishedTrace // ring; pos is the next overwrite slot
	pos     int
	slowest []*publishedTrace // sorted by root duration, descending
	started uint64
	ended   uint64
}

// DefaultRecent and DefaultSlowest size NewTracer's retention window.
const (
	DefaultRecent  = 256
	DefaultSlowest = 32
)

// NewTracer returns an enabled tracer with the default retention window.
func NewTracer() *Tracer { return NewTracerSize(DefaultRecent, DefaultSlowest) }

// NewTracerSize returns an enabled tracer retaining the last recent traces
// and the slowest slowest traces (minimums of 1 apply).
func NewTracerSize(recent, slowest int) *Tracer {
	if recent < 1 {
		recent = 1
	}
	if slowest < 1 {
		slowest = 1
	}
	return &Tracer{recentCap: recent, slowestCap: slowest}
}

// newID returns a non-zero random 64-bit span ID.
func newID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// newTraceID returns a non-zero random 128-bit trace ID.
func newTraceID() TraceID {
	var t TraceID
	hi, lo := rand.Uint64(), newID()
	for i := 0; i < 8; i++ {
		t[i] = byte(hi >> (56 - 8*i))
		t[8+i] = byte(lo >> (56 - 8*i))
	}
	return t
}

// StartSpan opens a span named name: a child of the span already in ctx, or
// the root of a new trace. The returned context carries the new span for
// further nesting. On a nil tracer (with no span in ctx) it returns ctx and
// a nil, no-op span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil {
		child := parent.Child(name)
		return ContextWithSpan(ctx, child), child
	}
	if t == nil {
		return ctx, nil
	}
	s := t.newRoot(name, newTraceID(), 0)
	return ContextWithSpan(ctx, s), s
}

// StartRemoteSpan opens this process's root span for a trace that began
// elsewhere (sc parsed from an inbound traceparent header): the span joins
// sc's trace ID with sc's span as its parent, so the originating process's
// span tree and this one stitch into one trace. On a nil tracer it returns
// ctx and a nil span.
func (t *Tracer) StartRemoteSpan(ctx context.Context, name string, sc SpanContext) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := t.newRoot(name, sc.TraceID, sc.SpanID)
	return ContextWithSpan(ctx, s), s
}

func (t *Tracer) newRoot(name string, traceID TraceID, parent uint64) *Span {
	t.mu.Lock()
	t.started++
	t.mu.Unlock()
	return &Span{
		tracer:  t,
		rec:     &traceRec{traceID: traceID},
		traceID: traceID,
		id:      newID(),
		parent:  parent,
		name:    name,
		start:   time.Now(),
		root:    true,
	}
}

// publish retains a completed trace in the ring and, when slow enough, the
// slowest-N list.
func (t *Tracer) publish(rec *traceRec, root SpanData) {
	pt := &publishedTrace{rec: rec, root: root}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ended++
	if len(t.recent) < t.recentCap {
		t.recent = append(t.recent, pt)
		t.pos = len(t.recent) % t.recentCap
	} else {
		t.recent[t.pos] = pt
		t.pos = (t.pos + 1) % t.recentCap
	}
	i := sort.Search(len(t.slowest), func(i int) bool {
		return t.slowest[i].root.DurationNs < root.DurationNs
	})
	if i < t.slowestCap {
		t.slowest = append(t.slowest, nil)
		copy(t.slowest[i+1:], t.slowest[i:])
		t.slowest[i] = pt
		if len(t.slowest) > t.slowestCap {
			t.slowest = t.slowest[:t.slowestCap]
		}
	}
}

// TraceSummary is one retained trace, snapshotted for rendering: the root
// span's identity plus every span recorded so far (late spans included).
type TraceSummary struct {
	TraceID    string     `json:"trace_id"`
	Root       string     `json:"root"`
	Start      time.Time  `json:"start"`
	DurationNs int64      `json:"duration_ns"`
	Spans      []SpanData `json:"spans"`
	Dropped    int        `json:"dropped_spans,omitempty"`
}

func summarize(pt *publishedTrace) TraceSummary {
	spans, dropped := pt.rec.snapshot()
	return TraceSummary{
		TraceID:    pt.rec.traceID.String(),
		Root:       pt.root.Name,
		Start:      pt.root.Start,
		DurationNs: pt.root.DurationNs,
		Spans:      spans,
		Dropped:    dropped,
	}
}

// Recent returns up to n retained traces, newest first (n <= 0: all).
func (t *Tracer) Recent(n int) []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	pts := make([]*publishedTrace, 0, len(t.recent))
	for i := 0; i < len(t.recent); i++ {
		// Walk backwards from the newest slot (pos-1) so output is
		// newest-first regardless of ring wraparound.
		idx := (t.pos - 1 - i + 2*len(t.recent)) % len(t.recent)
		pts = append(pts, t.recent[idx])
	}
	t.mu.Unlock()
	if n > 0 && len(pts) > n {
		pts = pts[:n]
	}
	out := make([]TraceSummary, len(pts))
	for i, pt := range pts {
		out[i] = summarize(pt)
	}
	return out
}

// Slowest returns up to n retained traces by descending root duration
// (n <= 0: all).
func (t *Tracer) Slowest(n int) []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	pts := append([]*publishedTrace(nil), t.slowest...)
	t.mu.Unlock()
	if n > 0 && len(pts) > n {
		pts = pts[:n]
	}
	out := make([]TraceSummary, len(pts))
	for i, pt := range pts {
		out[i] = summarize(pt)
	}
	return out
}

// Counts reports how many root spans were started and published.
func (t *Tracer) Counts() (started, ended uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started, t.ended
}

// Span is one timed operation inside a trace. Spans are created by
// Tracer.StartSpan (roots) or Span.Child, annotated with SetAttr/SetError,
// and recorded by End. All methods are no-ops on a nil receiver.
type Span struct {
	tracer  *Tracer
	rec     *traceRec
	traceID TraceID
	id      uint64
	parent  uint64
	name    string
	start   time.Time
	root    bool

	mu    sync.Mutex
	attrs []Attr
	err   string
	ended bool
}

// Child opens a sub-span starting now.
func (s *Span) Child(name string) *Span { return s.ChildAt(name, time.Now()) }

// ChildAt opens a sub-span with an explicit start time — the reconstruction
// hook for operations timed elsewhere (queue waits, per-pass compile metrics)
// whose spans are recorded after the fact with EndAt.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer:  s.tracer,
		rec:     s.rec,
		traceID: s.traceID,
		id:      newID(),
		parent:  s.id,
		name:    name,
		start:   start,
	}
}

// SetAttr annotates the span. Later values for one key append rather than
// overwrite; keep keys distinct.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetError marks the span failed. A nil error is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.err = err.Error()
}

// End records the span, ending now.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt records the span with an explicit end time. Ending a span twice is a
// no-op; ending the trace's root span publishes the trace to the tracer's
// retention window. Spans of the same trace may still End after the root —
// they append to the already-published record.
func (s *Span) EndAt(t time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs, errMsg := s.attrs, s.err
	s.mu.Unlock()

	d := t.Sub(s.start)
	if d < 0 {
		d = 0
	}
	sd := SpanData{
		SpanID:     FormatSpanID(s.id),
		Name:       s.name,
		Start:      s.start,
		DurationNs: int64(d),
		Attrs:      attrs,
		Err:        errMsg,
	}
	if s.parent != 0 {
		sd.ParentID = FormatSpanID(s.parent)
	}
	s.rec.append(sd)
	if s.root {
		s.tracer.publish(s.rec, sd)
	}
}

// Context returns the span's propagation identity for traceparent injection.
// The zero SpanContext marks a nil (non-recording) span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.id}
}

// TraceIDString returns the span's 32-hex trace ID ("" on a nil span) — the
// value echoed in X-Trios-Trace response headers.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.traceID.String()
}

// ctxKey keys the active span in a context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the active span, or nil (which every Span method
// tolerates).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
