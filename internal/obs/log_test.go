package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestLoggerLogfmt(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, FormatLogfmt)
	l.Debug("dropped")
	l.Info("triosd listening on :8080 (prod)", "workers", 4, "queue", 64)
	l.Error("store write failed", "err", "disk full")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (debug filtered):\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `msg="triosd listening on :8080 (prod)"`) {
		t.Fatalf("msg not quoted-preserved: %s", lines[0])
	}
	if !strings.Contains(lines[0], "level=info") || !strings.Contains(lines[0], "workers=4") || !strings.Contains(lines[0], "queue=64") {
		t.Fatalf("logfmt fields missing: %s", lines[0])
	}
	if !strings.HasPrefix(lines[0], "time=") {
		t.Fatalf("no leading timestamp: %s", lines[0])
	}
	if !strings.Contains(lines[1], "level=error") || !strings.Contains(lines[1], `err="disk full"`) {
		t.Fatalf("error line: %s", lines[1])
	}
}

func TestLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug, FormatJSON)
	l.Debug("probe", "replica", "http://r1", "ok", true)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, buf.String())
	}
	if rec["level"] != "debug" || rec["msg"] != "probe" || rec["replica"] != "http://r1" || rec["ok"] != "true" {
		t.Fatalf("json fields: %v", rec)
	}
	if _, ok := rec["time"].(string); !ok {
		t.Fatalf("missing time: %v", rec)
	}
}

func TestLoggerWith(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, FormatLogfmt).With("component", "fleet")
	l.Info("up")
	if !strings.Contains(buf.String(), "component=fleet") {
		t.Fatalf("With attr missing: %s", buf.String())
	}
}

func TestLoggerOddKeyValues(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, FormatLogfmt)
	l.Info("m", "key") // trailing key with no value
	if !strings.Contains(buf.String(), "(MISSING)") {
		t.Fatalf("odd kv not flagged: %s", buf.String())
	}
}

func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	l.Info("x", "k", "v")
	l.Error("y")
	if l.With("a", "b") != nil {
		t.Fatal("nil With returned non-nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	cases := map[string]Level{"": LevelInfo, "debug": LevelDebug, "info": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted junk")
	}
	if f, err := ParseFormat("json"); err != nil || f != FormatJSON {
		t.Errorf("ParseFormat(json) = %v, %v", f, err)
	}
	if f, err := ParseFormat(""); err != nil || f != FormatLogfmt {
		t.Errorf("ParseFormat(empty) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted junk")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, FormatLogfmt)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				l.Info("tick", "worker", j)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "time=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("torn line: %q", line)
		}
	}
}
