package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// debugTracesBody is the JSON form of GET /debug/traces.
type debugTracesBody struct {
	Enabled bool           `json:"enabled"`
	Started uint64         `json:"traces_started"`
	Ended   uint64         `json:"traces_ended"`
	Recent  []TraceSummary `json:"recent"`
	Slowest []TraceSummary `json:"slowest"`
}

// DebugHandler serves GET /debug/traces: the most recent and the slowest
// retained traces, as an indented span-tree text page by default or as JSON
// with ?format=json. ?n=K bounds how many traces of each kind are rendered
// (default 10). Works on a nil tracer (reports tracing disabled), so the
// route can be registered unconditionally.
func (t *Tracer) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 10
		if raw := r.URL.Query().Get("n"); raw != "" {
			if v, err := strconv.Atoi(raw); err == nil && v > 0 {
				n = v
			}
		}
		body := debugTracesBody{
			Enabled: t != nil,
			Recent:  t.Recent(n),
			Slowest: t.Slowest(n),
		}
		body.Started, body.Ended = t.Counts()
		if body.Recent == nil {
			body.Recent = []TraceSummary{}
		}
		if body.Slowest == nil {
			body.Slowest = []TraceSummary{}
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(body)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !body.Enabled {
			fmt.Fprintln(w, "tracing disabled (start the daemon with -trace)")
			return
		}
		fmt.Fprintf(w, "traces: %d started, %d completed, showing up to %d per section (?n=K, ?format=json)\n",
			body.Started, body.Ended, n)
		writeSection(w, "slowest", body.Slowest)
		writeSection(w, "recent", body.Recent)
	})
}

func writeSection(w http.ResponseWriter, title string, traces []TraceSummary) {
	fmt.Fprintf(w, "\n== %s (%d) ==\n", title, len(traces))
	for _, tr := range traces {
		fmt.Fprintf(w, "\ntrace %s  %s  %s  started %s\n",
			tr.TraceID, tr.Root, time.Duration(tr.DurationNs).Round(time.Microsecond),
			tr.Start.Format(time.RFC3339Nano))
		if tr.Dropped > 0 {
			fmt.Fprintf(w, "  (%d spans dropped past the per-trace cap)\n", tr.Dropped)
		}
		writeSpanTree(w, tr.Spans)
	}
}

// writeSpanTree renders spans as an indented tree under their parents,
// siblings ordered by start time. Spans whose parent is not in the trace
// (the root, and any span parented to a remote process's span) render at
// the top level.
func writeSpanTree(w http.ResponseWriter, spans []SpanData) {
	byID := make(map[string]bool, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = true
	}
	children := make(map[string][]SpanData)
	var roots []SpanData
	for _, s := range spans {
		if s.ParentID != "" && byID[s.ParentID] {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}
	order := func(list []SpanData) {
		sort.Slice(list, func(i, j int) bool { return list[i].Start.Before(list[j].Start) })
	}
	order(roots)
	var walk func(s SpanData, depth int)
	walk = func(s SpanData, depth int) {
		var b strings.Builder
		fmt.Fprintf(&b, "  %s%-24s %10s", strings.Repeat("  ", depth), s.Name,
			time.Duration(s.DurationNs).Round(time.Microsecond))
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, "  %s=%s", a.Key, a.Value)
		}
		if s.Err != "" {
			fmt.Fprintf(&b, "  error=%q", s.Err)
		}
		fmt.Fprintln(w, b.String())
		kids := children[s.SpanID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}
