package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func TestWriteRuntimeMetricsLintsClean(t *testing.T) {
	runtime.GC() // make sure at least one GC cycle exists for the pause histogram
	var buf bytes.Buffer
	WriteRuntimeMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"# TYPE go_heap_live_bytes gauge",
		"# TYPE go_heap_objects gauge",
		"# TYPE go_gc_cycles_total counter",
		"# TYPE go_gc_pause_seconds histogram",
		`go_gc_pause_seconds_bucket{le="+Inf"}`,
		"go_gc_pause_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime metrics missing %q:\n%s", want, out)
		}
	}
	if problems := LintExposition(strings.NewReader(out)); len(problems) != 0 {
		t.Fatalf("runtime metrics fail own lint: %v\n%s", problems, out)
	}
}
