package obs

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeRecording(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartSpan(context.Background(), "http POST /v1/compile")
	if root == nil {
		t.Fatal("root span is nil on an enabled tracer")
	}
	root.SetAttr("path", "/v1/compile")
	_, child := tr.StartSpan(ctx, "cache:l1")
	child.SetAttr("hit", "false")
	child.End()
	grand := child.Child("never-recorded") // ended after parent is fine too
	grand.End()
	root.SetError(errors.New("boom"))
	root.End()

	recent := tr.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("got %d recent traces, want 1", len(recent))
	}
	trc := recent[0]
	if trc.Root != "http POST /v1/compile" {
		t.Fatalf("root name %q", trc.Root)
	}
	if len(trc.TraceID) != 32 {
		t.Fatalf("trace id %q not 32 hex chars", trc.TraceID)
	}
	if len(trc.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(trc.Spans))
	}
	var rootData, childData SpanData
	for _, s := range trc.Spans {
		switch s.Name {
		case "http POST /v1/compile":
			rootData = s
		case "cache:l1":
			childData = s
		}
	}
	if rootData.ParentID != "" {
		t.Fatalf("root has parent %q", rootData.ParentID)
	}
	if rootData.Err != "boom" {
		t.Fatalf("root error %q", rootData.Err)
	}
	if childData.ParentID != rootData.SpanID {
		t.Fatalf("child parent %q != root span %q", childData.ParentID, rootData.SpanID)
	}
	if len(childData.Attrs) != 1 || childData.Attrs[0] != (Attr{Key: "hit", Value: "false"}) {
		t.Fatalf("child attrs %v", childData.Attrs)
	}
}

func TestLateSpansJoinPublishedTrace(t *testing.T) {
	tr := NewTracer()
	_, root := tr.StartSpan(context.Background(), "request")
	flush := root.Child("store:flush")
	root.End() // published with the flush still open

	if got := len(tr.Recent(0)[0].Spans); got != 1 {
		t.Fatalf("trace has %d spans before late End, want 1", got)
	}
	flush.End()
	if got := len(tr.Recent(0)[0].Spans); got != 2 {
		t.Fatalf("late span did not join published trace: %d spans, want 2", got)
	}
}

func TestReconstructedChildSpans(t *testing.T) {
	tr := NewTracer()
	_, root := tr.StartSpan(context.Background(), "request")
	start := time.Now().Add(-50 * time.Millisecond)
	c := root.ChildAt("compile", start)
	c.EndAt(start.Add(40 * time.Millisecond))
	root.End()
	spans := tr.Recent(0)[0].Spans
	for _, s := range spans {
		if s.Name == "compile" {
			if got := s.Duration(); got != 40*time.Millisecond {
				t.Fatalf("reconstructed duration %v, want 40ms", got)
			}
			return
		}
	}
	t.Fatal("compile span not recorded")
}

func TestRingBoundedAndNewestFirst(t *testing.T) {
	tr := NewTracerSize(4, 2)
	for i := 0; i < 10; i++ {
		_, s := tr.StartSpan(context.Background(), fmt.Sprintf("t%d", i))
		s.End()
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	for i, want := range []string{"t9", "t8", "t7", "t6"} {
		if recent[i].Root != want {
			t.Fatalf("recent[%d] = %s, want %s", i, recent[i].Root, want)
		}
	}
	started, ended := tr.Counts()
	if started != 10 || ended != 10 {
		t.Fatalf("counts %d/%d, want 10/10", started, ended)
	}
}

func TestSlowestOrdering(t *testing.T) {
	tr := NewTracerSize(16, 3)
	durations := []time.Duration{3 * time.Millisecond, 9 * time.Millisecond,
		time.Millisecond, 7 * time.Millisecond, 5 * time.Millisecond}
	base := time.Now().Add(-time.Second)
	for i, d := range durations {
		_, s := tr.StartSpan(context.Background(), fmt.Sprintf("t%d", i))
		s.start = base
		s.EndAt(base.Add(d))
	}
	slowest := tr.Slowest(0)
	if len(slowest) != 3 {
		t.Fatalf("slowest holds %d, want 3", len(slowest))
	}
	for i, want := range []string{"t1", "t3", "t4"} { // 9ms, 7ms, 5ms
		if slowest[i].Root != want {
			t.Fatalf("slowest[%d] = %s, want %s", i, slowest[i].Root, want)
		}
	}
}

func TestSpansPerTraceBounded(t *testing.T) {
	tr := NewTracer()
	_, root := tr.StartSpan(context.Background(), "flood")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		root.Child("c").End()
	}
	root.End() // the root itself lands past the cap
	trc := tr.Recent(0)[0]
	if len(trc.Spans) != maxSpansPerTrace {
		t.Fatalf("trace holds %d spans, want cap %d", len(trc.Spans), maxSpansPerTrace)
	}
	if trc.Dropped != 11 {
		t.Fatalf("dropped %d, want 11", trc.Dropped)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartSpan(context.Background(), "x")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	if got := SpanFromContext(ctx); got != nil {
		t.Fatalf("nil span stored in context: %v", got)
	}
	// Every method must tolerate the nil span.
	s.SetAttr("k", "v")
	s.SetError(errors.New("x"))
	s.Child("c").End()
	s.End()
	if id := s.TraceIDString(); id != "" {
		t.Fatalf("nil span trace id %q", id)
	}
	if sc := s.Context(); sc != (SpanContext{}) {
		t.Fatalf("nil span context %v", sc)
	}
	if tr.Recent(0) != nil || tr.Slowest(0) != nil {
		t.Fatal("nil tracer returned traces")
	}
}

func TestRemoteSpanJoinsTrace(t *testing.T) {
	upstream := NewTracer()
	_, proxySpan := upstream.StartSpan(context.Background(), "proxy:compile")
	fwd := proxySpan.Child("proxy:forward")
	header := fwd.Context().Traceparent()

	replica := NewTracer()
	sc, ok := ParseTraceparent(header)
	if !ok {
		t.Fatalf("own traceparent %q did not parse", header)
	}
	_, serverSpan := replica.StartRemoteSpan(context.Background(), "http POST /v1/compile", sc)
	serverSpan.End()
	fwd.End()
	proxySpan.End()

	up := upstream.Recent(0)[0]
	down := replica.Recent(0)[0]
	if up.TraceID != down.TraceID {
		t.Fatalf("trace ids diverge: proxy %s replica %s", up.TraceID, down.TraceID)
	}
	if down.Spans[0].ParentID != FormatSpanID(fwd.id) {
		t.Fatalf("replica root parent %s, want proxy forward span %s",
			down.Spans[0].ParentID, FormatSpanID(fwd.id))
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	tr := NewTracerSize(8, 4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, root := tr.StartSpan(context.Background(), "req")
			for j := 0; j < 8; j++ {
				_, c := tr.StartSpan(ctx, "child")
				c.SetAttr("j", "x")
				c.End()
			}
			root.End()
			tr.Recent(3)
			tr.Slowest(3)
		}()
	}
	wg.Wait()
	if _, ended := tr.Counts(); ended != 16 {
		t.Fatalf("ended %d, want 16", ended)
	}
}

func TestDebugHandlerTextAndJSON(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.StartSpan(context.Background(), "http POST /v1/compile")
	_, c := tr.StartSpan(ctx, "compile")
	c.End()
	root.End()

	rec := httptest.NewRecorder()
	tr.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	text := rec.Body.String()
	for _, want := range []string{"== slowest (1) ==", "== recent (1) ==", "http POST /v1/compile", "compile"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text output missing %q:\n%s", want, text)
		}
	}

	rec = httptest.NewRecorder()
	tr.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=json&n=5", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type %q", ct)
	}
	for _, want := range []string{`"enabled": true`, `"trace_id"`, `"compile"`, `"slowest"`} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("json output missing %q:\n%s", want, rec.Body.String())
		}
	}

	var disabled *Tracer
	rec = httptest.NewRecorder()
	disabled.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if !strings.Contains(rec.Body.String(), "tracing disabled") {
		t.Fatalf("disabled handler output: %s", rec.Body.String())
	}
}

func TestDebugMuxServesPprofAndTraces(t *testing.T) {
	mux := DebugMux(NewTracer())
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index: code %d body %.120s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("debug traces code %d", rec.Code)
	}
}
