// Package layout maps logical (program) qubits onto physical device qubits
// and provides the initial-placement strategies used before routing:
// identity, seeded random, and a greedy interaction-aware placer that treats
// an intact Toffoli as its three qubit pairs (§4: "the mapper can simply
// treat the non-decomposed Toffoli as it would the equivalent 6 CNOTs").
package layout

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"trios/internal/circuit"
	"trios/internal/topo"
)

// Layout is a bijection between virtual qubits and physical qubits of an
// n-qubit device. Virtual qubits 0..L-1 carry the program's logical qubits;
// virtual qubits L..n-1 are padding that lets routing SWAPs move data
// through unoccupied positions.
type Layout struct {
	v2p []int // virtual -> physical
	p2v []int // physical -> virtual
}

// Identity returns the layout placing virtual qubit i on physical qubit i.
func Identity(n int) *Layout {
	l := &Layout{v2p: make([]int, n), p2v: make([]int, n)}
	for i := 0; i < n; i++ {
		l.v2p[i] = i
		l.p2v[i] = i
	}
	return l
}

// FromVirtualToPhys builds a layout from an explicit virtual->physical
// assignment, which must be a permutation of 0..n-1.
func FromVirtualToPhys(v2p []int) (*Layout, error) {
	n := len(v2p)
	l := &Layout{v2p: make([]int, n), p2v: make([]int, n)}
	for i := range l.p2v {
		l.p2v[i] = -1
	}
	for v, p := range v2p {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("layout: physical qubit %d outside [0,%d)", p, n)
		}
		if l.p2v[p] != -1 {
			return nil, fmt.Errorf("layout: physical qubit %d assigned twice", p)
		}
		l.v2p[v] = p
		l.p2v[p] = v
	}
	return l, nil
}

// Random returns a uniformly random placement from the given RNG.
func Random(n int, rng *rand.Rand) *Layout {
	perm := rng.Perm(n)
	l, _ := FromVirtualToPhys(perm)
	return l
}

// Size returns the number of device qubits the layout covers.
func (l *Layout) Size() int { return len(l.v2p) }

// Phys returns the physical qubit currently holding virtual qubit v.
func (l *Layout) Phys(v int) int { return l.v2p[v] }

// Virt returns the virtual qubit currently held by physical qubit p.
func (l *Layout) Virt(p int) int { return l.p2v[p] }

// SwapPhys exchanges the virtual qubits held at two physical positions,
// mirroring the effect of a SWAP gate on (p1, p2).
func (l *Layout) SwapPhys(p1, p2 int) {
	v1, v2 := l.p2v[p1], l.p2v[p2]
	l.p2v[p1], l.p2v[p2] = v2, v1
	l.v2p[v1], l.v2p[v2] = p2, p1
}

// Copy returns an independent copy of the layout.
func (l *Layout) Copy() *Layout {
	c := &Layout{v2p: make([]int, len(l.v2p)), p2v: make([]int, len(l.p2v))}
	copy(c.v2p, l.v2p)
	copy(c.p2v, l.p2v)
	return c
}

// CopyFrom overwrites l with o's mapping. The layouts must be the same size;
// it is the allocation-free counterpart of Copy for reusable scratch layouts.
func (l *Layout) CopyFrom(o *Layout) {
	copy(l.v2p, o.v2p)
	copy(l.p2v, o.p2v)
}

// VirtualToPhys returns a copy of the virtual->physical assignment.
func (l *Layout) VirtualToPhys() []int {
	out := make([]int, len(l.v2p))
	copy(out, l.v2p)
	return out
}

// Validate checks the bijection invariant.
func (l *Layout) Validate() error {
	for v, p := range l.v2p {
		if l.p2v[p] != v {
			return fmt.Errorf("layout: v2p[%d]=%d but p2v[%d]=%d", v, p, p, l.p2v[p])
		}
	}
	return nil
}

// InteractionWeights accumulates, for every pair of logical qubits, how many
// two-qubit interactions the circuit implies between them. Gates on three or
// more qubits contribute one count to each of their qubit pairs, which is
// how the mapper "sees" an intact Toffoli.
func InteractionWeights(c *circuit.Circuit) map[[2]int]int {
	w := make(map[[2]int]int)
	for _, g := range c.Gates {
		if g.IsPseudo() {
			continue
		}
		qs := g.Qubits
		for i := 0; i < len(qs); i++ {
			for j := i + 1; j < len(qs); j++ {
				a, b := qs[i], qs[j]
				if a > b {
					a, b = b, a
				}
				w[[2]int{a, b}]++
			}
		}
	}
	return w
}

// Greedy builds an initial placement that tries to keep strongly-interacting
// logical qubits close on the device. It seeds the most-connected logical
// qubit at the device's highest-degree physical qubit, then repeatedly
// places the unplaced logical qubit with the strongest ties to already
// placed ones at the free physical qubit minimizing weighted distance to its
// placed partners. Remaining (non-interacting) qubits fill free positions
// nearest the placed region.
func Greedy(c *circuit.Circuit, g *topo.Graph) (*Layout, error) {
	return GreedyWeighted(c, g, nil)
}

// GreedyWeighted is Greedy with noise-aware distances: when w is non-nil,
// "distance" between physical qubits is the minimum total edge weight
// (intended: -log CNOT success) read from the weighted-path oracle instead
// of hop count, so heavily interacting logical pairs land on reliable
// couplers — the noise-aware mapper the paper pairs with noise-aware routing
// (§4, citing Murali et al. and Tannu & Qureshi). Both distance sources are
// shared precomputed tables: the hop matrix lives on the Graph's distance
// oracle, and w is built once per (graph, calibration) by the cost model, so
// placement no longer pays a private all-pairs Dijkstra per call.
func GreedyWeighted(c *circuit.Circuit, g *topo.Graph, w *topo.WeightedOracle) (*Layout, error) {
	n := g.NumQubits()
	if c.NumQubits > n {
		return nil, fmt.Errorf("layout: circuit has %d qubits, device %d", c.NumQubits, n)
	}
	weights := InteractionWeights(c)
	dist := func(p, q int) float64 {
		if w != nil {
			return w.Dist(p, q)
		}
		if d := g.Dist(p, q); d >= 0 {
			return float64(d)
		}
		return math.Inf(1)
	}

	// Total interaction weight per logical qubit.
	total := make([]int, c.NumQubits)
	for pair, w := range weights {
		total[pair[0]] += w
		total[pair[1]] += w
	}

	v2p := make([]int, n)
	for i := range v2p {
		v2p[i] = -1
	}
	usedPhys := make([]bool, n)

	// Seed: most interactive logical qubit on the highest-degree phys qubit.
	seedV := 0
	for v := 1; v < c.NumQubits; v++ {
		if total[v] > total[seedV] {
			seedV = v
		}
	}
	seedP := 0
	if w == nil {
		for p := 1; p < n; p++ {
			if g.Degree(p) > g.Degree(seedP) {
				seedP = p
			}
		}
	} else {
		// Noise-aware: seed at the weighted center — the qubit with the
		// smallest summed weighted distance to the rest of the device, so
		// the placement grows outward through reliable couplers.
		bestSum := math.Inf(1)
		for p := 0; p < n; p++ {
			sum := 0.0
			for q := 0; q < n; q++ {
				sum += dist(p, q)
			}
			if sum < bestSum {
				seedP, bestSum = p, sum
			}
		}
	}
	v2p[seedV] = seedP
	usedPhys[seedP] = true

	pairWeight := func(a, b int) int {
		if a > b {
			a, b = b, a
		}
		return weights[[2]int{a, b}]
	}

	for placed := 1; placed < c.NumQubits; placed++ {
		// Pick the unplaced logical qubit with max ties to placed ones,
		// breaking ties by total weight then index for determinism.
		bestV, bestTie := -1, -1
		for v := 0; v < c.NumQubits; v++ {
			if v2p[v] != -1 {
				continue
			}
			tie := 0
			for u := 0; u < c.NumQubits; u++ {
				if v2p[u] != -1 {
					tie += pairWeight(v, u)
				}
			}
			if tie > bestTie || (tie == bestTie && bestV >= 0 && total[v] > total[bestV]) {
				bestV, bestTie = v, tie
			}
		}
		// Place it at the free physical qubit minimizing weighted distance
		// to its placed partners (or nearest any placed qubit if isolated).
		bestP := -1
		bestCost := math.Inf(1)
		for p := 0; p < n; p++ {
			if usedPhys[p] {
				continue
			}
			cost := 0.0
			anyPartner := false
			for u := 0; u < c.NumQubits; u++ {
				if v2p[u] == -1 {
					continue
				}
				if pw := pairWeight(bestV, u); pw > 0 {
					cost += float64(pw) * dist(p, v2p[u])
					anyPartner = true
				}
			}
			if !anyPartner {
				for u := 0; u < c.NumQubits; u++ {
					if v2p[u] != -1 {
						cost += dist(p, v2p[u])
					}
				}
			}
			if cost < bestCost {
				bestP, bestCost = p, cost
			}
		}
		v2p[bestV] = bestP
		usedPhys[bestP] = true
	}

	// Fill padding virtual qubits into remaining physical slots in sorted
	// order for determinism.
	var freePhys []int
	for p := 0; p < n; p++ {
		if !usedPhys[p] {
			freePhys = append(freePhys, p)
		}
	}
	sort.Ints(freePhys)
	next := 0
	for v := c.NumQubits; v < n; v++ {
		v2p[v] = freePhys[next]
		next++
	}
	return FromVirtualToPhys(v2p)
}
