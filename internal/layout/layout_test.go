package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trios/internal/circuit"
	"trios/internal/topo"
)

func TestIdentity(t *testing.T) {
	l := Identity(5)
	for i := 0; i < 5; i++ {
		if l.Phys(i) != i || l.Virt(i) != i {
			t.Fatalf("identity wrong at %d", i)
		}
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFromVirtualToPhysValidation(t *testing.T) {
	if _, err := FromVirtualToPhys([]int{0, 0}); err == nil {
		t.Error("expected duplicate error")
	}
	if _, err := FromVirtualToPhys([]int{0, 5}); err == nil {
		t.Error("expected range error")
	}
	l, err := FromVirtualToPhys([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Phys(0) != 2 || l.Virt(2) != 0 {
		t.Error("mapping wrong")
	}
}

func TestSwapPhys(t *testing.T) {
	l := Identity(4)
	l.SwapPhys(1, 3)
	if l.Phys(1) != 3 || l.Phys(3) != 1 || l.Virt(1) != 3 || l.Virt(3) != 1 {
		t.Error("swap wrong")
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCopyIndependent(t *testing.T) {
	l := Identity(3)
	c := l.Copy()
	c.SwapPhys(0, 1)
	if l.Phys(0) != 0 {
		t.Error("copy shares state")
	}
}

// Property: any sequence of SwapPhys keeps the layout a valid bijection.
func TestSwapSequenceStaysBijective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := Random(8, rng)
		for i := 0; i < 30; i++ {
			a, b := rng.Intn(8), rng.Intn(8)
			if a != b {
				l.SwapPhys(a, b)
			}
		}
		return l.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInteractionWeightsCountsToffoliPairs(t *testing.T) {
	c := circuit.New(3)
	c.CCX(0, 1, 2).CX(0, 1)
	w := InteractionWeights(c)
	if w[[2]int{0, 1}] != 2 { // once from ccx, once from cx
		t.Errorf("w(0,1) = %d, want 2", w[[2]int{0, 1}])
	}
	if w[[2]int{0, 2}] != 1 || w[[2]int{1, 2}] != 1 {
		t.Errorf("toffoli pair weights wrong: %v", w)
	}
}

func TestInteractionWeightsSkipsPseudo(t *testing.T) {
	c := circuit.New(2)
	c.Barrier().Measure(0)
	if w := InteractionWeights(c); len(w) != 0 {
		t.Errorf("pseudo-ops produced weights: %v", w)
	}
}

func TestGreedyPlacesInteractingQubitsClose(t *testing.T) {
	g := topo.Line20()
	c := circuit.New(3)
	// Heavy interaction between 0 and 1; light with 2.
	for i := 0; i < 5; i++ {
		c.CX(0, 1)
	}
	c.CX(1, 2)
	l, err := Greedy(c, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	d := g.AllPairsDistances()
	if d[l.Phys(0)][l.Phys(1)] != 1 {
		t.Errorf("heavily interacting pair placed %d apart", d[l.Phys(0)][l.Phys(1)])
	}
	if d[l.Phys(1)][l.Phys(2)] > 2 {
		t.Errorf("connected pair placed %d apart", d[l.Phys(1)][l.Phys(2)])
	}
}

func TestGreedyHandlesToffoliTrio(t *testing.T) {
	g := topo.Johannesburg()
	c := circuit.New(3)
	c.CCX(0, 1, 2)
	l, err := Greedy(c, g)
	if err != nil {
		t.Fatal(err)
	}
	d := g.AllPairsDistances()
	total := d[l.Phys(0)][l.Phys(1)] + d[l.Phys(1)][l.Phys(2)] + d[l.Phys(0)][l.Phys(2)]
	if total > 4 {
		t.Errorf("trio placed with total distance %d", total)
	}
}

func TestGreedyTooManyQubits(t *testing.T) {
	g := topo.Line(3)
	c := circuit.New(5)
	if _, err := Greedy(c, g); err == nil {
		t.Error("expected error for oversize circuit")
	}
}

func TestGreedyDeterministic(t *testing.T) {
	g := topo.Grid5x4()
	c := circuit.New(6)
	c.CCX(0, 1, 2).CX(2, 3).CCX(3, 4, 5)
	l1, err := Greedy(c, g)
	if err != nil {
		t.Fatal(err)
	}
	l2, _ := Greedy(c, g)
	for v := 0; v < 20; v++ {
		if l1.Phys(v) != l2.Phys(v) {
			t.Fatal("greedy placement not deterministic")
		}
	}
}

func TestRandomLayoutSeeded(t *testing.T) {
	a := Random(10, rand.New(rand.NewSource(1)))
	b := Random(10, rand.New(rand.NewSource(1)))
	for v := 0; v < 10; v++ {
		if a.Phys(v) != b.Phys(v) {
			t.Fatal("same seed gave different layouts")
		}
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGreedyOnAllPaperTopologies(t *testing.T) {
	c := circuit.New(8)
	for i := 0; i+2 < 8; i++ {
		c.CCX(i, i+1, i+2)
	}
	for _, g := range topo.PaperTopologies() {
		l, err := Greedy(c, g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
	}
}
