package layout

import (
	"testing"

	"trios/internal/circuit"
	"trios/internal/topo"
)

// TestGreedyWeightedAvoidsBadRegion places a heavily-interacting pair on a
// line whose left half has terrible couplers; the noise-aware mapper must
// put the pair on the clean right half.
func TestGreedyWeightedAvoidsBadRegion(t *testing.T) {
	g := topo.Line(8)
	weight := func(a, b int) float64 {
		if a < 4 && b < 4 {
			return 10 // noisy left half
		}
		return 0.1
	}
	c := circuit.New(2)
	for i := 0; i < 5; i++ {
		c.CX(0, 1)
	}
	l, err := GreedyWeighted(c, g, weight)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	p0, p1 := l.Phys(0), l.Phys(1)
	if !g.Connected(p0, p1) {
		t.Fatalf("pair should still be adjacent: (%d,%d)", p0, p1)
	}
	if weight(p0, p1) > 1 {
		t.Errorf("pair placed on a noisy coupler (%d,%d)", p0, p1)
	}
}

// TestGreedyWeightedNilMatchesGreedy ensures the weighted path with nil
// weights is exactly the unweighted mapper.
func TestGreedyWeightedNilMatchesGreedy(t *testing.T) {
	g := topo.Johannesburg()
	c := circuit.New(6)
	c.CCX(0, 1, 2).CX(2, 3).CCX(3, 4, 5)
	a, err := Greedy(c, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyWeighted(c, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 20; v++ {
		if a.Phys(v) != b.Phys(v) {
			t.Fatal("nil-weight GreedyWeighted differs from Greedy")
		}
	}
}

func TestDistanceMatrixUnweightedMatchesBFS(t *testing.T) {
	g := topo.Grid5x4()
	d := distanceMatrix(g, nil)
	hops := g.AllPairsDistances()
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if d[i][j] != float64(hops[i][j]) {
				t.Fatalf("d[%d][%d] = %v, hops %d", i, j, d[i][j], hops[i][j])
			}
		}
	}
}
