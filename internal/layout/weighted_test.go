package layout

import (
	"math"
	"testing"

	"trios/internal/circuit"
	"trios/internal/topo"
)

// legacyDistanceMatrix preserves the private all-pairs machinery
// GreedyWeighted used before the cost-layer refactor (hop counts, or a
// linear-scan Dijkstra per source). It is the golden reference pinning that
// routing placement through the shared topo.WeightedOracle changed nothing.
func legacyDistanceMatrix(g *topo.Graph, edgeWeight func(a, b int) float64) [][]float64 {
	n := g.NumQubits()
	dist := make([][]float64, n)
	if edgeWeight == nil {
		hops := g.AllPairsDistances()
		for i := range dist {
			dist[i] = make([]float64, n)
			for j, d := range hops[i] {
				if d < 0 {
					dist[i][j] = math.Inf(1)
				} else {
					dist[i][j] = float64(d)
				}
			}
		}
		return dist
	}
	for src := 0; src < n; src++ {
		row := make([]float64, n)
		done := make([]bool, n)
		for i := range row {
			row[i] = math.Inf(1)
		}
		row[src] = 0
		for {
			u, best := -1, math.Inf(1)
			for q := 0; q < n; q++ {
				if !done[q] && row[q] < best {
					u, best = q, row[q]
				}
			}
			if u == -1 {
				break
			}
			done[u] = true
			for _, nb := range g.Neighbors(u) {
				w := edgeWeight(u, nb)
				if w < 0 {
					w = 0
				}
				if nd := row[u] + w; nd < row[nb] {
					row[nb] = nd
				}
			}
		}
		dist[src] = row
	}
	return dist
}

// legacyGreedyWeighted re-implements the pre-refactor placement loop on top
// of legacyDistanceMatrix, verbatim in its selection and tie-break order.
func legacyGreedyWeighted(c *circuit.Circuit, g *topo.Graph, edgeWeight func(a, b int) float64) []int {
	n := g.NumQubits()
	weights := InteractionWeights(c)
	dist := legacyDistanceMatrix(g, edgeWeight)
	total := make([]int, c.NumQubits)
	for pair, w := range weights {
		total[pair[0]] += w
		total[pair[1]] += w
	}
	v2p := make([]int, n)
	for i := range v2p {
		v2p[i] = -1
	}
	usedPhys := make([]bool, n)
	seedV := 0
	for v := 1; v < c.NumQubits; v++ {
		if total[v] > total[seedV] {
			seedV = v
		}
	}
	seedP := 0
	if edgeWeight == nil {
		for p := 1; p < n; p++ {
			if g.Degree(p) > g.Degree(seedP) {
				seedP = p
			}
		}
	} else {
		bestSum := math.Inf(1)
		for p := 0; p < n; p++ {
			sum := 0.0
			for q := 0; q < n; q++ {
				sum += dist[p][q]
			}
			if sum < bestSum {
				seedP, bestSum = p, sum
			}
		}
	}
	v2p[seedV] = seedP
	usedPhys[seedP] = true
	pairWeight := func(a, b int) int {
		if a > b {
			a, b = b, a
		}
		return weights[[2]int{a, b}]
	}
	for placed := 1; placed < c.NumQubits; placed++ {
		bestV, bestTie := -1, -1
		for v := 0; v < c.NumQubits; v++ {
			if v2p[v] != -1 {
				continue
			}
			tie := 0
			for u := 0; u < c.NumQubits; u++ {
				if v2p[u] != -1 {
					tie += pairWeight(v, u)
				}
			}
			if tie > bestTie || (tie == bestTie && bestV >= 0 && total[v] > total[bestV]) {
				bestV, bestTie = v, tie
			}
		}
		bestP := -1
		bestCost := math.Inf(1)
		for p := 0; p < n; p++ {
			if usedPhys[p] {
				continue
			}
			cost := 0.0
			anyPartner := false
			for u := 0; u < c.NumQubits; u++ {
				if v2p[u] == -1 {
					continue
				}
				if w := pairWeight(bestV, u); w > 0 {
					cost += float64(w) * dist[p][v2p[u]]
					anyPartner = true
				}
			}
			if !anyPartner {
				for u := 0; u < c.NumQubits; u++ {
					if v2p[u] != -1 {
						cost += dist[p][v2p[u]]
					}
				}
			}
			if cost < bestCost {
				bestP, bestCost = p, cost
			}
		}
		v2p[bestV] = bestP
		usedPhys[bestP] = true
	}
	return v2p[:c.NumQubits]
}

// testWeights is a set of edge-weight shapes exercising clean, skewed, and
// hot-edge calibration landscapes.
func testWeights() map[string]func(a, b int) float64 {
	return map[string]func(a, b int) float64{
		"flat": func(a, b int) float64 { return 0.015 },
		"split": func(a, b int) float64 {
			if a < 10 && b < 10 {
				return 1.5
			}
			return 0.01
		},
		"skewed": func(a, b int) float64 {
			return 0.005 + 0.013*float64((a*7+b*13)%11)
		},
	}
}

// testCircuits returns interaction structures of increasing richness.
func testCircuits() map[string]*circuit.Circuit {
	c1 := circuit.New(2)
	for i := 0; i < 5; i++ {
		c1.CX(0, 1)
	}
	c2 := circuit.New(6)
	c2.CCX(0, 1, 2).CX(2, 3).CCX(3, 4, 5).CX(0, 5)
	c3 := circuit.New(9)
	for i := 0; i < 8; i++ {
		c3.CX(i, i+1)
	}
	c3.CCX(0, 4, 8)
	return map[string]*circuit.Circuit{"pair": c1, "toffolis": c2, "chain": c3}
}

// TestGreedyWeightedPinnedToLegacy is the satellite pin: GreedyWeighted over
// the shared topo.WeightedOracle must reproduce the deleted private
// distance-matrix implementation placement for placement, across devices,
// circuits, and weight landscapes.
func TestGreedyWeightedPinnedToLegacy(t *testing.T) {
	for _, g := range []*topo.Graph{topo.Johannesburg(), topo.Grid5x4(), topo.Line20(), topo.Clusters5x4()} {
		for wn, w := range testWeights() {
			orc := topo.NewWeightedOracle(g, w)
			for cn, c := range testCircuits() {
				want := legacyGreedyWeighted(c, g, w)
				got, err := GreedyWeighted(c, g, orc)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", g.Name(), wn, cn, err)
				}
				for v, p := range want {
					if got.Phys(v) != p {
						t.Fatalf("%s/%s/%s: qubit %d placed at %d, legacy %d",
							g.Name(), wn, cn, v, got.Phys(v), p)
					}
				}
			}
		}
		// And the unweighted path against the legacy hop-matrix variant.
		for cn, c := range testCircuits() {
			want := legacyGreedyWeighted(c, g, nil)
			got, err := Greedy(c, g)
			if err != nil {
				t.Fatalf("%s/unweighted/%s: %v", g.Name(), cn, err)
			}
			for v, p := range want {
				if got.Phys(v) != p {
					t.Fatalf("%s/unweighted/%s: qubit %d placed at %d, legacy %d",
						g.Name(), cn, v, got.Phys(v), p)
				}
			}
		}
	}
}

// TestGreedyWeightedAvoidsBadRegion places a heavily-interacting pair on a
// line whose left half has terrible couplers; the noise-aware mapper must
// put the pair on the clean right half.
func TestGreedyWeightedAvoidsBadRegion(t *testing.T) {
	g := topo.Line(8)
	weight := func(a, b int) float64 {
		if a < 4 && b < 4 {
			return 10 // noisy left half
		}
		return 0.1
	}
	c := circuit.New(2)
	for i := 0; i < 5; i++ {
		c.CX(0, 1)
	}
	l, err := GreedyWeighted(c, g, topo.NewWeightedOracle(g, weight))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	p0, p1 := l.Phys(0), l.Phys(1)
	if !g.Connected(p0, p1) {
		t.Fatalf("pair should still be adjacent: (%d,%d)", p0, p1)
	}
	if weight(p0, p1) > 1 {
		t.Errorf("pair placed on a noisy coupler (%d,%d)", p0, p1)
	}
}

// TestGreedyWeightedNilMatchesGreedy ensures the weighted path with a nil
// oracle is exactly the unweighted mapper.
func TestGreedyWeightedNilMatchesGreedy(t *testing.T) {
	g := topo.Johannesburg()
	c := circuit.New(6)
	c.CCX(0, 1, 2).CX(2, 3).CCX(3, 4, 5)
	a, err := Greedy(c, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyWeighted(c, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 20; v++ {
		if a.Phys(v) != b.Phys(v) {
			t.Fatal("nil-weight GreedyWeighted differs from Greedy")
		}
	}
}
