module trios

go 1.24
