GO ?= go

# Benchmark runs need real parallelism to measure anything: a 1-2 core CI
# runner would silently suppress every parallel arm. GOMAXPROCS is honored by
# the Go runtime even above the core count, so floor it at 4 for all bench
# targets (callers can still override: GOMAXPROCS=8 make bench-service).
GOMAXPROCS ?= 4
BENCH_ENV = GOMAXPROCS=$(GOMAXPROCS)

.PHONY: all build test race bench bench-route bench-sim bench-kernels bench-noise bench-optimize bench-stream bench-service bench-fleet bench-obs fleet serve loadgen lint vet fmt fmt-check bench-json fuzz-rewrite fuzz-stream

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent compilation engine, the routers it drives, the
# lazily-built per-device distance oracle they all share, the simulation
# engine's parallel sweeps and trajectory workers, the serving layer's
# cache/singleflight/admission machinery, the persistent artifact store, and
# the fleet proxy's routing/health paths.
race:
	$(GO) test -race ./internal/compiler/... ./internal/route/... ./internal/topo/... ./internal/sim/... ./internal/stab/... ./internal/service/... ./internal/device/... ./internal/store/... ./internal/fleet/... ./internal/experiments/... ./internal/rewrite/... ./internal/template/... ./internal/obs/... ./internal/stream/... ./internal/qasm/...

# Bench smoke: run every benchmark exactly once in short mode so the
# compile-path benchmarks cannot silently rot. Not a timing run.
bench:
	$(BENCH_ENV) $(GO) test -short -run '^$$' -bench . -benchtime 1x ./...

# Routing micro-benchmarks: router end-to-end timings plus old-vs-new path
# machinery (legacy per-query BFS/Dijkstra vs the distance-oracle lookups).
bench-route:
	$(GO) test -run '^$$' -bench 'Router|Distances|ShortestPath|Weighted|Oracle' -benchmem ./internal/route/... ./internal/topo/...

# Emit the machine-readable compile-path benchmark for the perf trajectory.
bench-json:
	$(BENCH_ENV) $(GO) run ./cmd/experiments -bench-json BENCH_compile.json

# Simulation-engine benchmark: legacy full-scan kernels vs fused branch-free
# kernels (serial + parallel), serial Monte-Carlo vs the parallel trajectory
# backend, and dense vs stabilizer on a 20-qubit Clifford verification.
# Writes BENCH_sim.json and a BENCH_sim.txt summary. (Redirect, not tee: a
# pipe would swallow the benchmark's exit status and let a determinism
# failure pass CI.)
bench-sim:
	$(BENCH_ENV) $(GO) run ./cmd/experiments -sim-bench BENCH_sim.json > BENCH_sim.txt
	cat BENCH_sim.txt

# Kernel micro-benchmark: the preserved legacy arms (branchy delta-scoring,
# full-scan gate loops) vs the branch-free slab/kernel rewrites, old-vs-new
# in one report. Writes BENCH_kernels.json and a BENCH_kernels.txt summary.
bench-kernels:
	$(BENCH_ENV) $(GO) run ./cmd/experiments -kernel-bench BENCH_kernels.json > BENCH_kernels.txt
	cat BENCH_kernels.txt

# Noise-aware sweep: the benchmark suite compiled under per-device
# calibrations with the Uniform vs Noise cost models, evaluated on estimated
# success. Writes BENCH_noise.json and prints the comparison; exits nonzero
# if the noise-aware arm loses on mean. NOISE_BENCH_FLAGS=-noise-short
# shrinks it to the CI subset.
bench-noise:
	$(GO) run ./cmd/experiments -noise-bench BENCH_noise.json $(NOISE_BENCH_FLAGS)

# Optimizer benchmark: legacy cancel loop vs the saturating rewrite engine
# across the Table-1 grid (two-qubit counts old-vs-new, divergent cells
# statevector-verified) plus template-warm cold-compile latency. Writes
# BENCH_optimize.json and a BENCH_optimize.txt summary; exits nonzero if any
# cell regresses vs legacy or a divergence fails equivalence.
# OPT_BENCH_FLAGS=-opt-short shrinks it to the CI subset.
bench-optimize:
	$(BENCH_ENV) $(GO) run ./cmd/experiments -opt-bench BENCH_optimize.json $(OPT_BENCH_FLAGS) > BENCH_optimize.txt
	cat BENCH_optimize.txt

# Streaming-compile benchmark: the serial vs channel-pipelined window
# drivers on a generated million-gate Clifford+T stream (bit-identical
# outputs asserted in-run), plus subprocess peak-RSS samples showing memory
# is governed by the window, not the circuit length. Writes
# BENCH_stream.json and a BENCH_stream.txt summary; exits nonzero if the
# streamed output diverges from the monolithic golden arm or peak RSS
# exceeds the window budget. STREAM_BENCH_FLAGS=-stream-short shrinks the
# gate counts for CI.
bench-stream:
	$(BENCH_ENV) $(GO) run ./cmd/experiments -stream-bench BENCH_stream.json $(STREAM_BENCH_FLAGS) > BENCH_stream.txt
	cat BENCH_stream.txt

# Streaming-parser fuzz: FuzzStreamParse holds the pull-based QASM reader to
# the in-memory parser gate for gate, with bounded errors on oversized
# statements. The corpus-backed check runs in `make test`; this fuzzes
# beyond it.
fuzz-stream:
	$(GO) test -run '^$$' -fuzz FuzzStreamParse -fuzztime 30s ./internal/qasm/

# Confluence fuzz: random rule-application orders (seeded pop orders) must
# saturate to the same final gate counts. The smoke test runs in `make
# test`; this target fuzzes beyond the checked-in corpus.
fuzz-rewrite:
	$(GO) test -run '^$$' -fuzz FuzzConfluence -fuzztime 30s ./internal/rewrite/

# Run the compile daemon locally (ctrl-c drains gracefully).
serve:
	$(GO) run ./cmd/triosd

# Drive a running daemon with the standard benchmark mix.
loadgen:
	$(GO) run ./cmd/loadgen

# Serving benchmark: build triosd + loadgen, serve on a local port, replay
# the standard mix closed-loop, and write BENCH_service.json (throughput,
# latency quantiles, cache hit rate). TRIOSD_RACE=-race instruments the
# daemon for the CI smoke.
bench-service:
	$(BENCH_ENV) sh scripts/bench_service.sh

# Fleet benchmark: 3 triosd replicas (each with a persistent artifact store)
# behind the triosfleet consistent-hash proxy. Measures single-vs-fleet
# throughput, kills a replica mid-run, then restarts everything and asserts
# the warm-restart hit rate. Writes BENCH_fleet.json. TRIOSD_RACE=-race
# instruments the daemons for the CI smoke; FLEET_MIN_SPEEDUP tightens the
# scaling floor.
bench-fleet:
	$(BENCH_ENV) sh scripts/bench_fleet.sh

# Observability-cost benchmark: serve the same daemon with tracing off, then
# on (the default), drive the identical mix against each, and write
# BENCH_obs.json with tracing_on_vs_off_ratio. Fails if tracing costs more
# than 5% of throughput (OBS_MIN_RATIO) or the trace ring comes back empty.
# TRIOSD_RACE=-race instruments the daemon for the CI smoke.
bench-obs:
	$(BENCH_ENV) sh scripts/bench_obs.sh

# Run a local 3-replica fleet behind the proxy until ctrl-c (no benchmark).
fleet:
	FLEET_HOLD=1 sh scripts/bench_fleet.sh

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: vet fmt-check
