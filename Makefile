GO ?= go

.PHONY: all build test race bench bench-route lint vet fmt fmt-check bench-json

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent compilation engine, the routers it drives, and
# the lazily-built per-device distance oracle they all share.
race:
	$(GO) test -race ./internal/compiler/... ./internal/route/... ./internal/topo/...

# Bench smoke: run every benchmark exactly once in short mode so the
# compile-path benchmarks cannot silently rot. Not a timing run.
bench:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x ./...

# Routing micro-benchmarks: router end-to-end timings plus old-vs-new path
# machinery (legacy per-query BFS/Dijkstra vs the distance-oracle lookups).
bench-route:
	$(GO) test -run '^$$' -bench 'Router|Distances|ShortestPath|Weighted|Oracle' -benchmem ./internal/route/... ./internal/topo/...

# Emit the machine-readable compile-path benchmark for the perf trajectory.
bench-json:
	$(GO) run ./cmd/experiments -bench-json BENCH_compile.json

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: vet fmt-check
