// Command experiments regenerates the paper's tables and figures.
//
// Compilation-heavy experiments fan out across a worker pool; -workers
// caps the parallelism (default: GOMAXPROCS). Results are identical for
// any worker count.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp table1 -workers 8
//	experiments -exp fig1,fig6,fig7,fig8,fig9,fig10,fig11,fig12
//	experiments -triplets 35 -shots 8192 -seed 2021
//	experiments -exp mc-toffoli,mc-rp -mc-shots 128   # trajectory Monte-Carlo suites
//	experiments -bench-json BENCH_compile.json
//	experiments -sim-bench BENCH_sim.json
//	experiments -stream-bench BENCH_stream.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"trios/internal/experiments"
	"trios/internal/noise"
	"trios/internal/topo"
	"trios/internal/version"
)

// streamRSSChildEnv carries the parameters of a streaming-compile RSS
// sample; when set, the process runs only that compile, prints its peak RSS
// in bytes, and exits. RunStreamBench self-execs with it so each RSS sample
// is a fresh address space.
const streamRSSChildEnv = "TRIOS_STREAM_RSS_CHILD"

func streamRSSChild(raw string) {
	var p experiments.StreamRSSParams
	if err := json.Unmarshal([]byte(raw), &p); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rss, err := experiments.StreamRSSChild(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(rss)
	os.Exit(0)
}

// streamRSSExec runs one RSS sample in a child copy of this binary.
func streamRSSExec(p experiments.StreamRSSParams) (int64, error) {
	self, err := os.Executable()
	if err != nil {
		return 0, err
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return 0, err
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), streamRSSChildEnv+"="+string(raw))
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return 0, fmt.Errorf("stream RSS child: %w", err)
	}
	var rss int64
	if _, err := fmt.Sscan(strings.TrimSpace(string(out)), &rss); err != nil {
		return 0, fmt.Errorf("stream RSS child output %q: %w", out, err)
	}
	return rss, nil
}

func main() {
	if raw := os.Getenv(streamRSSChildEnv); raw != "" {
		streamRSSChild(raw)
	}
	var (
		exp         = flag.String("exp", "all", "comma-separated experiments: table1, fig1, fig6, fig7, fig8, fig9, fig10, fig11, fig12, all, or the opt-in trajectory suites mc-toffoli, mc-rp (not included in all)")
		triplets    = flag.Int("triplets", 35, "random qubit triples for the Toffoli experiments (fig6/fig7; fig8 uses 99)")
		shots       = flag.Int("shots", 8192, "shots per Toffoli configuration")
		seed        = flag.Int64("seed", 2021, "random seed")
		jsonPath    = flag.String("json", "", "also write all results as JSON to this file")
		workers     = flag.Int("workers", 0, "parallel compilation workers (0 = GOMAXPROCS)")
		benchJSON   = flag.String("bench-json", "", "run only the compile-path benchmark and write its JSON report here (e.g. BENCH_compile.json)")
		simJSON     = flag.String("sim-bench", "", "run only the simulation-engine benchmark and write its JSON report here (e.g. BENCH_sim.json); a text summary goes to stdout")
		kernelJSON  = flag.String("kernel-bench", "", "run only the kernel micro-benchmark (legacy vs branch-free arms of the route delta-scoring and dense sweep hot loops) and write its JSON report here (e.g. BENCH_kernels.json); a text summary goes to stdout")
		noiseJSON   = flag.String("noise-bench", "", "run only the noise-aware sweep (uniform vs noise cost model under per-device calibrations) and write its JSON report here (e.g. BENCH_noise.json); a text summary goes to stdout")
		noiseShort  = flag.Bool("noise-short", false, "shrink the noise-aware sweep to a CI-sized subset of benchmarks and topologies")
		optJSON     = flag.String("opt-bench", "", "run only the optimizer benchmark (legacy cancel loop vs saturating rewrite engine across the Table-1 grid, plus template-warm cold-compile latency) and write its JSON report here (e.g. BENCH_optimize.json); a text summary goes to stdout")
		optShort    = flag.Bool("opt-short", false, "shrink the optimizer benchmark to a CI-sized subset of benchmarks and topologies")
		streamJSON  = flag.String("stream-bench", "", "run only the streaming-compile benchmark (serial vs pipelined window drivers plus subprocess peak-RSS samples on generated million-gate streams) and write its JSON report here (e.g. BENCH_stream.json); a text summary goes to stdout")
		streamShort = flag.Bool("stream-short", false, "shrink the streaming benchmark to CI-sized gate counts")
		mcShots     = flag.Int("mc-shots", 64, "trajectory Monte-Carlo shots for the mc-toffoli/mc-rp experiments")
		mcTrips     = flag.Int("mc-triplets", 4, "random triplets for the mc-toffoli experiment")
		showVersion = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	experiments.Workers = *workers

	if *simJSON != "" {
		report, err := experiments.RunSimBench(*workers, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*simJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.WriteText(os.Stdout)
		if !report.Deterministic {
			fmt.Fprintln(os.Stderr, "sim bench: parallel paths diverged from serial results")
			os.Exit(1)
		}
		return
	}

	if *kernelJSON != "" {
		report, err := experiments.RunKernelBench(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*kernelJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.WriteText(os.Stdout)
		if !report.Identical {
			fmt.Fprintln(os.Stderr, "kernel bench: a branch-free arm diverged from its legacy arm")
			os.Exit(1)
		}
		return
	}

	if *streamJSON != "" {
		report, err := experiments.RunStreamBench(experiments.StreamBenchOptions{
			Seed:    *seed,
			Short:   *streamShort,
			RSSExec: streamRSSExec,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*streamJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report.WriteText(os.Stdout)
		if !report.EquivalenceOK {
			fmt.Fprintln(os.Stderr, "stream bench: streaming output diverged from the monolithic golden arm")
			os.Exit(1)
		}
		if report.PeakRSSBytes > report.WindowBudgetBytes {
			fmt.Fprintln(os.Stderr, "stream bench: peak RSS exceeded the window budget")
			os.Exit(1)
		}
		return
	}

	if *noiseJSON != "" {
		report, err := experiments.RunNoiseBench(*noiseShort, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*noiseJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := report.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if report.MeanNoise < report.MeanUniform {
			fmt.Fprintln(os.Stderr, "noise bench: noise-aware mean success fell below the uniform control")
			os.Exit(1)
		}
		return
	}

	if *optJSON != "" {
		report, err := experiments.RunOptBench(*optShort, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*optJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := report.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !report.EquivalenceOK {
			fmt.Fprintln(os.Stderr, "opt bench: a divergent cell failed statevector equivalence")
			os.Exit(1)
		}
		if report.SaturateWorse > 0 {
			fmt.Fprintln(os.Stderr, "opt bench: the saturating engine regressed two-qubit counts vs legacy")
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		report, err := experiments.RunCompileBench(*workers, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !report.Deterministic {
			fmt.Fprintln(os.Stderr, "compile bench: serial and parallel drains diverged")
			os.Exit(1)
		}
		if report.SpeedupNote != "" {
			fmt.Printf("wrote %s (%d jobs, route %.3fs; %s)\n",
				*benchJSON, report.Runs[0].Jobs, report.RouteSeconds, report.SpeedupNote)
		} else {
			fmt.Printf("wrote %s (%d jobs, route %.3fs, %.2fx parallel speedup with %d workers)\n",
				*benchJSON, report.Runs[0].Jobs, report.RouteSeconds, report.Speedup, report.Runs[1].Workers)
		}
		return
	}

	if *jsonPath != "" {
		report, err := experiments.BuildReport(*triplets, *shots, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	out := os.Stdout
	g := topo.Johannesburg()

	run("table1", func() error { return experiments.WriteTable1(out) })
	run("fig1", func() error { return experiments.WriteFig1(out, *seed) })

	var toffoliResults []experiments.TripletResult
	needToffoli := all || want["fig6"] || want["fig7"]
	if needToffoli {
		// Default to the exact 35 triples from the paper's Figures 6-7;
		// -triplets N with N != 35 switches to seeded random triples.
		trips := experiments.PaperTriplets()
		if *triplets != len(trips) {
			trips = experiments.RandomTriplets(g, *triplets, *seed)
		}
		var err error
		toffoliResults, err = experiments.ToffoliExperiment(g, trips, noise.Johannesburg0819(), *shots, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	run("fig6", func() error { experiments.WriteFig6(out, toffoliResults); return nil })
	run("fig7", func() error { experiments.WriteFig7(out, toffoliResults); return nil })
	run("fig8", func() error {
		trips := experiments.RandomTriplets(g, 99, *seed+1)
		rs, err := experiments.ToffoliExperiment(g, trips, noise.Johannesburg0819(), *shots, *seed+1)
		if err != nil {
			return err
		}
		experiments.WriteFig8(out, rs)
		return nil
	})

	var sweep []experiments.BenchResult
	needSweep := all || want["fig9"] || want["fig10"] || want["fig11"]
	if needSweep {
		var err error
		sweep, err = experiments.BenchmarkSweep(experiments.DefaultModel(), *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	run("fig9", func() error { experiments.WriteFig9(out, sweep); return nil })
	run("fig10", func() error { experiments.WriteFig10(out, sweep); return nil })
	run("fig11", func() error { experiments.WriteFig11(out, sweep); return nil })

	run("ablation", func() error {
		for _, bench := range []string{"cnx_logancilla-19", "grovers-9", "cuccaro_adder-20"} {
			rs, err := experiments.Ablation(bench, *seed)
			if err != nil {
				return err
			}
			experiments.WriteAblation(out, rs)
			fmt.Println()
		}
		return nil
	})

	run("toffoli-topos", func() error {
		rs, err := experiments.ToffoliAcrossTopologies(*triplets, noise.Johannesburg0819(), *seed)
		if err != nil {
			return err
		}
		experiments.WriteToffoliTopos(out, rs)
		return nil
	})

	run("rp", func() error {
		rs, err := experiments.RelativePhase(experiments.DefaultModel(), *seed)
		if err != nil {
			return err
		}
		experiments.WriteRP(out, rs)
		return nil
	})

	run("scaling", func() error {
		points, err := experiments.Scaling(*seed)
		if err != nil {
			return err
		}
		experiments.WriteScaling(out, points)
		return nil
	})

	// Trajectory-backed suites run only when explicitly requested (they
	// are Monte-Carlo heavy and scale with -workers), never under "all".
	if want["mc-toffoli"] {
		fmt.Println("==== mc-toffoli ====")
		trips := experiments.RandomTriplets(g, *mcTrips, *seed)
		rs, err := experiments.ToffoliTrajectory(g, trips, noise.Johannesburg0819(), *mcShots, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mc-toffoli: %v\n", err)
			os.Exit(1)
		}
		experiments.WriteToffoliTrajectory(out, *mcShots, rs)
		fmt.Println()
	}
	if want["mc-rp"] {
		fmt.Println("==== mc-rp ====")
		rs, err := experiments.RPTrajectory(noise.Johannesburg0819(), 5, *mcShots, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mc-rp: %v\n", err)
			os.Exit(1)
		}
		experiments.WriteRPTrajectory(out, *mcShots, rs)
		fmt.Println()
	}

	run("fig12", func() error {
		base := noise.Johannesburg0819()
		base.ReadoutError = 0
		base.Coherence = noise.CoherencePerQubit
		points, err := experiments.Sensitivity(base, experiments.DefaultFactors(), *seed)
		if err != nil {
			return err
		}
		experiments.WriteFig12(out, points)
		return nil
	})
}
