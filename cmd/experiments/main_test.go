package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildExperiments compiles the binary once per test binary invocation.
// main() here is flag.Parse-and-os.Exit shaped, so the smoke tests exercise
// the real executable instead of refactoring the experiment driver.
func buildExperiments(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "experiments")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestTable1Smoke compiles and runs the cheapest end-to-end experiment and
// pins exit code plus stable output fragments.
func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the experiments binary")
	}
	bin := buildExperiments(t)
	out, err := exec.Command(bin, "-exp", "table1").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -exp table1: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"==== table1 ====", "cnx_dirty-11", "grovers-9", "bv-20"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the experiments binary")
	}
	bin := buildExperiments(t)
	out, err := exec.Command(bin, "-version").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -version: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), "trios ") || !strings.Contains(string(out), "go1.") {
		t.Fatalf("-version output = %q", out)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the experiments binary")
	}
	bin := buildExperiments(t)
	// Unknown experiment names are simply skipped by the driver; a bad flag
	// must exit non-zero.
	if err := exec.Command(bin, "-no-such-flag").Run(); err == nil {
		t.Fatal("bad flag should exit non-zero")
	}
}
