// Command triosd serves the Trios compiler over HTTP: POST /v1/compile
// compiles OpenQASM 2.0 (or a named benchmark) for a target device with the
// same pipelines, options, and bit-identical output as the trios CLI, backed
// by a content-addressed compile cache, singleflight request coalescing, and
// bounded-queue admission control (429 on overload). Requests may name a
// device calibration (see GET /v1/calibrations) for noise-aware,
// fidelity-annotated compiles. GET /v1/devices lists topologies, /healthz
// reports liveness and build identity, /metrics exports Prometheus counters
// plus Go runtime health. SIGINT/SIGTERM drains gracefully: in-flight
// compiles finish (up to -grace), new work is refused with 503.
//
// POST /v1/compile/stream compiles a raw OpenQASM 2.0 body of unbounded
// length in fixed memory, streaming the compiled program back window by
// window (options as query parameters; -stream-window sets the default
// window size). The compile cache is bypassed (X-Trios-Cache: bypass) and a
// final "// trios-stream:" comment carries the run's stats.
//
// With -store-dir the in-memory cache is backed by a disk-based,
// content-addressed artifact store: cold compiles are written through and a
// restarted daemon serves a previously-seen mix warm (X-Trios-Cache:
// hit-disk), with bodies byte-identical to the cold compiles that populated
// the store.
//
// Observability: requests are traced by default (-trace=false disables) —
// every /v1/ request records a span tree (cache probe, queue wait, per-pass
// compile, store flush) into a bounded in-process ring served at GET
// /debug/traces, and the trace ID is echoed in the X-Trios-Trace response
// header. Inbound W3C traceparent headers are honored, so a request routed
// through triosfleet carries one trace ID end to end. Logs are structured
// (-log-format logfmt|json, -log-level debug|info|warn|error), and -debug-addr
// starts a separate listener with net/http/pprof plus the trace ring.
//
// Usage:
//
//	triosd -addr :8421 -workers 4 -queue 64 -cache 512 -store-dir /var/lib/triosd
//	curl -s localhost:8421/healthz
//	curl -s localhost:8421/v1/calibrations
//	curl -s -X POST localhost:8421/v1/compile -d '{"benchmark":"grovers-9","pipeline":"trios","calibration":"johannesburg-0819"}'
//	curl -s localhost:8421/debug/traces            # recent + slowest span trees
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"trios/internal/compiler"
	"trios/internal/obs"
	"trios/internal/service"
	"trios/internal/store"
	"trios/internal/template"
	"trios/internal/topo"
	"trios/internal/version"
)

// errFlagParse marks a flag error the FlagSet already reported to stderr;
// main must not print it a second time.
var errFlagParse = errors.New("invalid arguments")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		if errors.Is(err, errFlagParse) {
			os.Exit(2) // usage error, already reported; 2 matches flag.ExitOnError
		}
		log.Fatalf("triosd: %v", err)
	}
}

// serveConfig carries the resolved daemon configuration from flag parsing to
// serve — one struct instead of a dozen positional parameters.
type serveConfig struct {
	addr          string
	debugAddr     string // "" = no debug listener
	workers       int
	queue         int
	cacheSize     int
	storeDir      string
	storeMaxBytes int64
	streamWindow  int
	templates     bool
	templateWarm  string
	grace         time.Duration

	logger *obs.Logger
	tracer *obs.Tracer // nil = tracing disabled

	// ready, when non-nil, is called with the bound serving listener address
	// once the daemon accepts connections; debugReady likewise for the debug
	// listener (tests bind :0 and use these to find the ports).
	ready      func(net.Addr)
	debugReady func(net.Addr)
}

// run is the testable daemon entry point: flags come from args, -version
// output goes to out, and the daemon serves until ctx is cancelled, then
// drains gracefully. ready, when non-nil, is called with the bound listener
// address once the daemon is accepting connections — tests bind :0 and use
// it to find the port.
func run(ctx context.Context, args []string, out io.Writer, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("triosd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8421", "listen address")
		debugAddr     = fs.String("debug-addr", "", "separate listener for /debug/pprof and /debug/traces ('' = off)")
		workers       = fs.Int("workers", 0, "compile workers (0 = GOMAXPROCS)")
		queue         = fs.Int("queue", 64, "admission queue depth; overflow is shed with 429")
		cacheSize     = fs.Int("cache", 512, "compile cache capacity in artifacts")
		storeDir      = fs.String("store-dir", "", "persistent artifact store directory ('' = memory-only; restarts are cold)")
		storeMaxBytes = fs.Int64("store-max-bytes", store.DefaultMaxBytes, "artifact store byte budget; LRU entries beyond it are evicted")
		streamWindow  = fs.Int("stream-window", 0, "default gate-window size for /v1/compile/stream (0 = built-in default; requests may override with ?window=N)")
		templates     = fs.Bool("templates", false, "precompile the template library at startup and serve or stitch matching requests from fragments")
		templateWarm  = fs.String("template-warm", "johannesburg", "comma-separated topologies to warm template fragments for (with -templates)")
		grace         = fs.Duration("grace", 15*time.Second, "graceful-drain deadline on shutdown")
		trace         = fs.Bool("trace", true, "record request span trees, served at /debug/traces")
		logLevel      = fs.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat     = fs.String("log-format", "logfmt", "log format: logfmt or json")
		showVersion   = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help printed usage; that is success
		}
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if *showVersion {
		fmt.Fprintln(out, version.Get())
		return nil
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}
	cfg := serveConfig{
		addr:          *addr,
		debugAddr:     *debugAddr,
		workers:       *workers,
		queue:         *queue,
		cacheSize:     *cacheSize,
		storeDir:      *storeDir,
		storeMaxBytes: *storeMaxBytes,
		streamWindow:  *streamWindow,
		templates:     *templates,
		templateWarm:  *templateWarm,
		grace:         *grace,
		logger:        obs.NewLogger(os.Stderr, level, format),
		ready:         ready,
	}
	if *trace {
		cfg.tracer = obs.NewTracer()
	}
	return serve(ctx, cfg)
}

func serve(ctx context.Context, cfg serveConfig) error {
	logger := cfg.logger
	var st *store.Store
	if cfg.storeDir != "" {
		var err error
		st, err = store.Open(cfg.storeDir, cfg.storeMaxBytes)
		if err != nil {
			return err
		}
		stats := st.Stats()
		logger.Info(fmt.Sprintf("triosd artifact store %s: %d entries, %d bytes (rebuilt=%v)",
			cfg.storeDir, stats.Entries, stats.Bytes, stats.Rebuilt))
		defer st.Close() // persist the recency index on every exit path
	}
	var tmpl *template.Store
	if cfg.templates {
		lib, err := template.DefaultLibrary()
		if err != nil {
			return err
		}
		tmpl = template.NewStore(lib)
		logger.Info(fmt.Sprintf("triosd template library: %d templates (digest %.12s)", lib.Len(), lib.Digest()))
	}
	svc := service.New(service.Config{
		Workers:      cfg.workers,
		QueueDepth:   cfg.queue,
		CacheEntries: cfg.cacheSize,
		StreamWindow: cfg.streamWindow,
		Store:        st,
		Templates:    tmpl,
		Tracer:       cfg.tracer,
		Logger:       logger,
	})
	srv := &http.Server{
		Handler: svc.Handler(),
		// Bound what a slow or stalled client can pin: headers must arrive
		// promptly and a request body within a minute, otherwise the
		// connection's goroutine would sit in front of admission control
		// forever (and hold Shutdown open until the grace deadline). No
		// WriteTimeout: response time is bounded by the compile itself,
		// which the admission queue already controls.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	logger.Info(fmt.Sprintf("triosd listening on %s (%s, workers=%d queue=%d cache=%d)",
		ln.Addr(), version.Get(), cfg.workers, cfg.queue, cfg.cacheSize),
		"trace", cfg.tracer != nil)
	if cfg.ready != nil {
		cfg.ready(ln.Addr())
	}

	// The opt-in debug listener: pprof + the trace ring, on its own port so
	// profiling endpoints never share the serving surface.
	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return err
		}
		debugSrv = &http.Server{Handler: obs.DebugMux(cfg.tracer), ReadHeaderTimeout: 10 * time.Second}
		logger.Info(fmt.Sprintf("triosd debug listening on %s (pprof + traces)", dln.Addr()))
		if cfg.debugReady != nil {
			cfg.debugReady(dln.Addr())
		}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("triosd debug listener failed", "err", err.Error())
			}
		}()
	}

	if tmpl != nil {
		// Warm fragments off the serving path: requests that arrive before a
		// fragment lands simply compile through the full pipeline (a miss).
		go warmTemplates(ctx, tmpl, cfg.templateWarm, logger)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	logger.Info(fmt.Sprintf("triosd draining (deadline %s)", cfg.grace))
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	// Flip to draining FIRST, while the listener is still up: load balancers
	// polling /healthz see 503 and stop routing, and requests that still
	// arrive get 503 for new compiles (cache hits keep serving). Only then
	// stop accepting connections, finish open requests, and drain the pool.
	svc.BeginDrain()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(drainCtx)
	}
	if err := svc.Close(drainCtx); err != nil {
		logger.Warn(fmt.Sprintf("triosd: drain deadline cut compilations short: %v", err))
	}
	logger.Info("triosd stopped")
	return nil
}

// warmTemplates precompiles the template library for each named topology
// under the daemon's default request options — both the plain and the
// -optimize variant, so requests at either setting hit warmed fragments.
// Warmup runs in the background and quits quietly on shutdown.
func warmTemplates(ctx context.Context, tmpl *template.Store, topos string, logger *obs.Logger) {
	defs, err := service.DefaultCompileOptions()
	if err != nil {
		logger.Warn(fmt.Sprintf("triosd template warmup: %v", err))
		return
	}
	optimized := defs
	optimized.Optimize = true
	start := time.Now()
	total := 0
	for _, name := range strings.Split(topos, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		g, err := topo.ByName(name)
		if err != nil {
			logger.Warn(fmt.Sprintf("triosd template warmup: %v", err))
			continue
		}
		g.EnsureOracle()
		for _, o := range []compiler.Options{defs, optimized} {
			n, err := tmpl.Precompile(ctx, g, o)
			total += n
			if err != nil {
				if ctx.Err() != nil {
					return // shutting down mid-warmup; not an error
				}
				logger.Warn(fmt.Sprintf("triosd template warmup %s: %v", name, err))
			}
		}
	}
	logger.Info(fmt.Sprintf("triosd template warmup done: %d fragments in %s", total, time.Since(start).Round(time.Millisecond)))
}
