// Command triosd serves the Trios compiler over HTTP: POST /v1/compile
// compiles OpenQASM 2.0 (or a named benchmark) for a target device with the
// same pipelines, options, and bit-identical output as the trios CLI, backed
// by a content-addressed compile cache, singleflight request coalescing, and
// bounded-queue admission control (429 on overload). Requests may name a
// device calibration (see GET /v1/calibrations) for noise-aware,
// fidelity-annotated compiles. GET /v1/devices lists topologies, /healthz
// reports liveness and build identity, /metrics exports Prometheus counters.
// SIGINT/SIGTERM drains gracefully: in-flight compiles finish (up to
// -grace), new work is refused with 503.
//
// With -store-dir the in-memory cache is backed by a disk-based,
// content-addressed artifact store: cold compiles are written through and a
// restarted daemon serves a previously-seen mix warm (X-Trios-Cache:
// hit-disk), with bodies byte-identical to the cold compiles that populated
// the store.
//
// Usage:
//
//	triosd -addr :8421 -workers 4 -queue 64 -cache 512 -store-dir /var/lib/triosd
//	curl -s localhost:8421/healthz
//	curl -s localhost:8421/v1/calibrations
//	curl -s -X POST localhost:8421/v1/compile -d '{"benchmark":"grovers-9","pipeline":"trios","calibration":"johannesburg-0819"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"trios/internal/compiler"
	"trios/internal/service"
	"trios/internal/store"
	"trios/internal/template"
	"trios/internal/topo"
	"trios/internal/version"
)

// errFlagParse marks a flag error the FlagSet already reported to stderr;
// main must not print it a second time.
var errFlagParse = errors.New("invalid arguments")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		if errors.Is(err, errFlagParse) {
			os.Exit(2) // usage error, already reported; 2 matches flag.ExitOnError
		}
		log.Fatalf("triosd: %v", err)
	}
}

// run is the testable daemon entry point: flags come from args, -version
// output goes to out, and the daemon serves until ctx is cancelled, then
// drains gracefully. ready, when non-nil, is called with the bound listener
// address once the daemon is accepting connections — tests bind :0 and use
// it to find the port.
func run(ctx context.Context, args []string, out io.Writer, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("triosd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8421", "listen address")
		workers       = fs.Int("workers", 0, "compile workers (0 = GOMAXPROCS)")
		queue         = fs.Int("queue", 64, "admission queue depth; overflow is shed with 429")
		cacheSize     = fs.Int("cache", 512, "compile cache capacity in artifacts")
		storeDir      = fs.String("store-dir", "", "persistent artifact store directory ('' = memory-only; restarts are cold)")
		storeMaxBytes = fs.Int64("store-max-bytes", store.DefaultMaxBytes, "artifact store byte budget; LRU entries beyond it are evicted")
		templates     = fs.Bool("templates", false, "precompile the template library at startup and serve or stitch matching requests from fragments")
		templateWarm  = fs.String("template-warm", "johannesburg", "comma-separated topologies to warm template fragments for (with -templates)")
		grace         = fs.Duration("grace", 15*time.Second, "graceful-drain deadline on shutdown")
		showVersion   = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help printed usage; that is success
		}
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if *showVersion {
		fmt.Fprintln(out, version.Get())
		return nil
	}
	return serve(ctx, *addr, *workers, *queue, *cacheSize, *storeDir, *storeMaxBytes, *templates, *templateWarm, *grace, ready)
}

func serve(ctx context.Context, addr string, workers, queue, cacheSize int, storeDir string, storeMaxBytes int64, templates bool, templateWarm string, grace time.Duration, ready func(net.Addr)) error {
	var st *store.Store
	if storeDir != "" {
		var err error
		st, err = store.Open(storeDir, storeMaxBytes)
		if err != nil {
			return err
		}
		stats := st.Stats()
		log.Printf("triosd artifact store %s: %d entries, %d bytes (rebuilt=%v)", storeDir, stats.Entries, stats.Bytes, stats.Rebuilt)
		defer st.Close() // persist the recency index on every exit path
	}
	var tmpl *template.Store
	if templates {
		lib, err := template.DefaultLibrary()
		if err != nil {
			return err
		}
		tmpl = template.NewStore(lib)
		log.Printf("triosd template library: %d templates (digest %.12s)", lib.Len(), lib.Digest())
	}
	svc := service.New(service.Config{Workers: workers, QueueDepth: queue, CacheEntries: cacheSize, Store: st, Templates: tmpl})
	srv := &http.Server{
		Handler: svc.Handler(),
		// Bound what a slow or stalled client can pin: headers must arrive
		// promptly and a request body within a minute, otherwise the
		// connection's goroutine would sit in front of admission control
		// forever (and hold Shutdown open until the grace deadline). No
		// WriteTimeout: response time is bounded by the compile itself,
		// which the admission queue already controls.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("triosd listening on %s (%s, workers=%d queue=%d cache=%d)",
		ln.Addr(), version.Get(), workers, queue, cacheSize)
	if ready != nil {
		ready(ln.Addr())
	}
	if tmpl != nil {
		// Warm fragments off the serving path: requests that arrive before a
		// fragment lands simply compile through the full pipeline (a miss).
		go warmTemplates(ctx, tmpl, templateWarm)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	log.Printf("triosd draining (deadline %s)", grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	// Flip to draining FIRST, while the listener is still up: load balancers
	// polling /healthz see 503 and stop routing, and requests that still
	// arrive get 503 for new compiles (cache hits keep serving). Only then
	// stop accepting connections, finish open requests, and drain the pool.
	svc.BeginDrain()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := svc.Close(drainCtx); err != nil {
		log.Printf("triosd: drain deadline cut compilations short: %v", err)
	}
	log.Printf("triosd stopped")
	return nil
}

// warmTemplates precompiles the template library for each named topology
// under the daemon's default request options — both the plain and the
// -optimize variant, so requests at either setting hit warmed fragments.
// Warmup runs in the background and quits quietly on shutdown.
func warmTemplates(ctx context.Context, tmpl *template.Store, topos string) {
	defs, err := service.DefaultCompileOptions()
	if err != nil {
		log.Printf("triosd template warmup: %v", err)
		return
	}
	optimized := defs
	optimized.Optimize = true
	start := time.Now()
	total := 0
	for _, name := range strings.Split(topos, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		g, err := topo.ByName(name)
		if err != nil {
			log.Printf("triosd template warmup: %v", err)
			continue
		}
		g.EnsureOracle()
		for _, o := range []compiler.Options{defs, optimized} {
			n, err := tmpl.Precompile(ctx, g, o)
			total += n
			if err != nil {
				if ctx.Err() != nil {
					return // shutting down mid-warmup; not an error
				}
				log.Printf("triosd template warmup %s: %v", name, err)
			}
		}
	}
	log.Printf("triosd template warmup done: %d fragments in %s", total, time.Since(start).Round(time.Millisecond))
}
