package main

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// freeAddr reserves an ephemeral port and returns it for reuse. The port is
// released before use, so a parallel bind could in principle steal it; for a
// test process that window is acceptable.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRunRejectsBadLogFlags: invalid -log-level / -log-format are usage
// errors, like any other bad flag.
func TestRunRejectsBadLogFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-log-level", "loud"},
		{"-log-format", "xml"},
	} {
		if err := run(context.Background(), args, io.Discard, nil); !errors.Is(err, errFlagParse) {
			t.Fatalf("run(%v) = %v, want errFlagParse", args, err)
		}
	}
}

// TestDaemonTraceHeaderAndDebugEndpoints boots the daemon with the default
// tracing plus a debug listener, compiles once, and checks: the response
// carries X-Trios-Trace, /debug/traces on the serving port shows the compile
// span tree, and the debug listener serves pprof and the same trace ring.
func TestDaemonTraceHeaderAndDebugEndpoints(t *testing.T) {
	debugAddr := freeAddr(t)
	base, shutdown := startDaemon(t, "-debug-addr", debugAddr)
	defer shutdown()

	resp, err := http.Post(base+"/v1/compile", "application/json",
		strings.NewReader(`{"benchmark":"cnx_inplace-4","pipeline":"trios"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trios-Trace")
	if len(traceID) != 32 {
		t.Fatalf("X-Trios-Trace %q is not a 32-hex trace id", traceID)
	}

	// The root span publishes after the response; poll the ring.
	deadline := time.Now().Add(10 * time.Second)
	var body string
	for {
		dresp, err := http.Get(base + "/debug/traces")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(dresp.Body)
		dresp.Body.Close()
		body = string(raw)
		if strings.Contains(body, traceID) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/debug/traces never showed trace %s:\n%s", traceID, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{"POST /v1/compile", "compile", "queue:wait"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/debug/traces missing %q:\n%s", want, body)
		}
	}

	// The separate debug listener serves the same ring plus pprof.
	dresp, err := http.Get("http://" + debugAddr + "/debug/traces")
	if err != nil {
		t.Fatalf("debug listener: %v", err)
	}
	raw, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if !strings.Contains(string(raw), traceID) {
		t.Fatalf("debug listener trace ring missing trace %s", traceID)
	}
	presp, err := http.Get("http://" + debugAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof: %v", err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", presp.StatusCode)
	}
}

// TestDaemonTraceOff: -trace=false serves compiles without trace headers and
// /debug/traces reports tracing disabled.
func TestDaemonTraceOff(t *testing.T) {
	base, shutdown := startDaemon(t, "-trace=false")
	defer shutdown()
	resp, err := http.Post(base+"/v1/compile", "application/json",
		strings.NewReader(`{"benchmark":"cnx_inplace-4","pipeline":"trios"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trios-Trace"); got != "" {
		t.Fatalf("X-Trios-Trace %q with -trace=false", got)
	}
	dresp, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if !strings.Contains(string(raw), "tracing disabled") {
		t.Fatalf("/debug/traces with tracing off: %s", raw)
	}
}
