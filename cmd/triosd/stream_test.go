package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"trios/internal/benchmarks"
)

// TestDaemonStreamEndpoint drives POST /v1/compile/stream through the real
// daemon: a generated 20k-gate Clifford+T stream goes up as a raw body and
// the compiled program comes back chunked, with a stats trailer and the
// cache bypassed.
func TestDaemonStreamEndpoint(t *testing.T) {
	base, shutdown := startDaemon(t, "-stream-window", "2048")
	defer shutdown()

	const gates = 20_000
	resp, err := http.Post(base+"/v1/compile/stream?pipeline=trios&seed=2",
		"text/plain", benchmarks.StreamCliffordT(16, gates, 7))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %.300s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Trios-Cache"); got != "bypass" {
		t.Fatalf("X-Trios-Cache = %q, want bypass", got)
	}
	s := string(body)
	if !strings.Contains(s, `"input_gates":20000`) {
		t.Fatalf("stats trailer missing or wrong; body tail: %.300s", s[max(0, len(s)-300):])
	}
	// -stream-window 2048 is the daemon default when the request names none.
	if !strings.Contains(s, `"window":2048`) {
		t.Fatalf("daemon -stream-window not honored; body tail: %.300s", s[max(0, len(s)-300):])
	}
	if strings.Contains(s, "// trios-stream-error:") {
		t.Fatalf("in-band stream error; body tail: %.300s", s[max(0, len(s)-300):])
	}
}
