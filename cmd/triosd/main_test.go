package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunRejectsBadFlags: unknown flags are usage errors, marked so main
// exits 2 without printing them twice.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-no-such-flag"}, &out, nil)
	if !errors.Is(err, errFlagParse) {
		t.Fatalf("err = %v, want errFlagParse", err)
	}
	if err := run(context.Background(), []string{"-h"}, &out, nil); err != nil {
		t.Fatalf("-h should be success, got %v", err)
	}
}

// TestRunVersion prints the build identity and exits cleanly.
func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("-version printed nothing")
	}
}

// TestRunBadAddr: an unbindable address must surface as an error, not hang.
func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.0.0.1:http"}, io.Discard, nil)
	if err == nil || errors.Is(err, errFlagParse) {
		t.Fatalf("err = %v, want a listen error", err)
	}
}

// TestDaemonSmoke boots the daemon on an ephemeral port, round-trips
// /healthz, /v1/devices, /v1/calibrations, and one compile, then cancels the
// context and expects a clean graceful drain.
func TestDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-grace", "5s"}, io.Discard,
			func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", resp.StatusCode, body)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("/healthz status field %q", health.Status)
	}

	if resp, body = get("/v1/devices"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "johannesburg") {
		t.Fatalf("/v1/devices status %d: %s", resp.StatusCode, body)
	}
	if resp, body = get("/v1/calibrations"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "johannesburg-0819") {
		t.Fatalf("/v1/calibrations status %d: %s", resp.StatusCode, body)
	}

	compileBody := strings.NewReader(`{"benchmark":"cnx_inplace-4","pipeline":"trios","calibration":"johannesburg-0819"}`)
	cresp, err := http.Post(base+"/v1/compile", "application/json", compileBody)
	if err != nil {
		t.Fatal(err)
	}
	cbody, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/compile status %d: %s", cresp.StatusCode, cbody)
	}
	var art struct {
		QASM             string  `json:"qasm"`
		Calibration      string  `json:"calibration"`
		EstimatedSuccess float64 `json:"estimated_success"`
	}
	if err := json.Unmarshal(cbody, &art); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(art.QASM, "OPENQASM 2.0;") || art.Calibration != "johannesburg-0819" || art.EstimatedSuccess <= 0 {
		t.Fatalf("compile response looks wrong: %s", cbody)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful drain returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}

	// The listener is gone after drain.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after drain")
	}
}
