package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunRejectsBadFlags: unknown flags are usage errors, marked so main
// exits 2 without printing them twice.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-no-such-flag"}, &out, nil)
	if !errors.Is(err, errFlagParse) {
		t.Fatalf("err = %v, want errFlagParse", err)
	}
	if err := run(context.Background(), []string{"-h"}, &out, nil); err != nil {
		t.Fatalf("-h should be success, got %v", err)
	}
}

// TestRunVersion prints the build identity and exits cleanly.
func TestRunVersion(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("-version printed nothing")
	}
}

// TestRunBadAddr: an unbindable address must surface as an error, not hang.
func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.0.0.1:http"}, io.Discard, nil)
	if err == nil || errors.Is(err, errFlagParse) {
		t.Fatalf("err = %v, want a listen error", err)
	}
}

// startDaemon boots the daemon with the given extra flags on an ephemeral
// port and returns its base URL plus a shutdown func that cancels and waits
// for the graceful drain.
func startDaemon(t *testing.T, extra ...string) (base string, shutdown func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-grace", "10s"}, extra...)
	go func() {
		done <- run(ctx, args, io.Discard, func(a net.Addr) { addrCh <- a })
	}()
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return base, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("graceful drain returned %v", err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("daemon did not drain after cancel")
		}
	}
}

// postCompile sends one compile request and returns the response body and
// the X-Trios-Cache outcome header.
func postCompile(t *testing.T, base, reqBody string) (body []byte, outcome string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/compile", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/compile status %d: %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Trios-Cache")
}

// TestRestartWarmFromStoreDir is the restart-warm acceptance test: a daemon
// restarted against a populated -store-dir serves a repeated mix with >= 90%
// cache hit rate and bodies byte-identical to the cold compiles.
func TestRestartWarmFromStoreDir(t *testing.T) {
	storeDir := t.TempDir()
	mix := []string{
		`{"benchmark":"cnx_dirty-11","pipeline":"trios"}`,
		`{"benchmark":"grovers-9","pipeline":"baseline"}`,
		`{"benchmark":"bv-20","topology":"line","pipeline":"trios"}`,
		`{"benchmark":"qaoa_complete-10","pipeline":"trios","seed":4}`,
	}

	base, shutdown := startDaemon(t, "-store-dir", storeDir)
	coldBodies := make([][]byte, len(mix))
	for i, req := range mix {
		body, outcome := postCompile(t, base, req)
		if outcome != "miss" {
			t.Fatalf("cold request %d outcome %q, want miss", i, outcome)
		}
		coldBodies[i] = body
	}
	shutdown() // graceful drain flushes the write-behind queue and the index

	// Restart against the same store directory and replay the mix repeatedly.
	base, shutdown = startDaemon(t, "-store-dir", storeDir)
	defer shutdown()
	const rounds = 5
	hits, total := 0, 0
	for r := 0; r < rounds; r++ {
		for i, req := range mix {
			body, outcome := postCompile(t, base, req)
			total++
			switch outcome {
			case "hit-disk":
				if r != 0 {
					t.Fatalf("round %d request %d still reading disk; promotion failed", r, i)
				}
				hits++
			case "hit":
				hits++
			default:
				t.Logf("round %d request %d outcome %q", r, i, outcome)
			}
			if !bytes.Equal(body, coldBodies[i]) {
				t.Fatalf("restart-warm body for request %d differs from its cold compile", i)
			}
		}
	}
	if rate := float64(hits) / float64(total); rate < 0.9 {
		t.Fatalf("restart-warm hit rate %.2f, want >= 0.90", rate)
	}

	// The restarted daemon's health reports the store tier.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var health struct {
		Store *struct {
			Entries int    `json:"entries"`
			Hits    uint64 `json:"hits"`
		} `json:"store"`
	}
	if err := json.Unmarshal(raw, &health); err != nil {
		t.Fatal(err)
	}
	if health.Store == nil || health.Store.Entries < len(mix) || health.Store.Hits == 0 {
		t.Fatalf("healthz store block looks wrong: %s", raw)
	}
}

// TestDaemonSmoke boots the daemon on an ephemeral port, round-trips
// /healthz, /v1/devices, /v1/calibrations, and one compile, then cancels the
// context and expects a clean graceful drain.
func TestDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-grace", "5s"}, io.Discard,
			func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", resp.StatusCode, body)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("/healthz status field %q", health.Status)
	}

	if resp, body = get("/v1/devices"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "johannesburg") {
		t.Fatalf("/v1/devices status %d: %s", resp.StatusCode, body)
	}
	if resp, body = get("/v1/calibrations"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "johannesburg-0819") {
		t.Fatalf("/v1/calibrations status %d: %s", resp.StatusCode, body)
	}

	compileBody := strings.NewReader(`{"benchmark":"cnx_inplace-4","pipeline":"trios","calibration":"johannesburg-0819"}`)
	cresp, err := http.Post(base+"/v1/compile", "application/json", compileBody)
	if err != nil {
		t.Fatal(err)
	}
	cbody, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/compile status %d: %s", cresp.StatusCode, cbody)
	}
	var art struct {
		QASM             string  `json:"qasm"`
		Calibration      string  `json:"calibration"`
		EstimatedSuccess float64 `json:"estimated_success"`
	}
	if err := json.Unmarshal(cbody, &art); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(art.QASM, "OPENQASM 2.0;") || art.Calibration != "johannesburg-0819" || art.EstimatedSuccess <= 0 {
		t.Fatalf("compile response looks wrong: %s", cbody)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful drain returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}

	// The listener is gone after drain.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after drain")
	}
}
