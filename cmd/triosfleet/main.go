// Command triosfleet fronts a fleet of triosd replicas: it consistent-hashes
// each compile's content-addressed cache key across the replicas, so every
// replica's two-tier cache (in-memory LRU over its persistent artifact store)
// serves a stable shard of the key space. Replica health is polled via
// /healthz; draining replicas are routed around, and a replica that dies
// mid-run is retried along the ring, so the fleet loses capacity rather than
// availability.
//
// Observability: routed compiles are traced by default (-trace=false
// disables) — the proxy records a span per request (key resolve, one forward
// span per attempt) and injects a W3C traceparent into every forward, so the
// replica's spans join the same trace; GET /debug/traces serves the proxy's
// ring and X-Trios-Trace echoes the trace ID. Logs are structured
// (-log-format logfmt|json, -log-level), and -debug-addr starts a separate
// pprof + traces listener.
//
// Usage:
//
//	triosfleet -addr :8420 -replicas http://127.0.0.1:8431,http://127.0.0.1:8432,http://127.0.0.1:8433
//	curl -s localhost:8420/healthz          # fleet aggregate + per-replica status
//	curl -s -X POST localhost:8420/v1/compile -d '{"benchmark":"grovers-9","pipeline":"trios"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"trios/internal/fleet"
	"trios/internal/obs"
	"trios/internal/version"
)

// errFlagParse marks a flag error the FlagSet already reported to stderr;
// main must not print it a second time.
var errFlagParse = errors.New("invalid arguments")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		if errors.Is(err, errFlagParse) {
			os.Exit(2)
		}
		log.Fatalf("triosfleet: %v", err)
	}
}

// parseReplicas turns a comma-separated URL list into named replicas; the
// name is the host:port, which is what shows up in headers and metrics.
func parseReplicas(spec string) ([]fleet.Replica, error) {
	var out []fleet.Replica
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("replica %q is not a URL like http://host:port", raw)
		}
		out = append(out, fleet.Replica{Name: u.Host, URL: strings.TrimRight(raw, "/")})
	}
	if len(out) == 0 {
		return nil, errors.New("-replicas must list at least one replica URL")
	}
	return out, nil
}

// run is the testable entry point, mirroring triosd: flags from args,
// -version output to out, serve until ctx cancels, then drain. ready, when
// non-nil, receives the bound listener address.
func run(ctx context.Context, args []string, out io.Writer, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("triosfleet", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", ":8420", "listen address")
		debugAddr      = fs.String("debug-addr", "", "separate listener for /debug/pprof and /debug/traces ('' = off)")
		replicasSpec   = fs.String("replicas", "", "comma-separated triosd base URLs (required)")
		vnodes         = fs.Int("vnodes", fleet.DefaultVnodes, "hash-ring virtual nodes per replica")
		healthInterval = fs.Duration("health-interval", 500*time.Millisecond, "replica /healthz poll interval")
		grace          = fs.Duration("grace", 15*time.Second, "graceful-drain deadline on shutdown")
		trace          = fs.Bool("trace", true, "record routed-request span trees, served at /debug/traces")
		logLevel       = fs.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat      = fs.String("log-format", "logfmt", "log format: logfmt or json")
		showVersion    = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if *showVersion {
		fmt.Fprintln(out, version.Get())
		return nil
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}
	logger := obs.NewLogger(os.Stderr, level, format)
	replicas, err := parseReplicas(*replicasSpec)
	if err != nil {
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}
	var tracer *obs.Tracer
	if *trace {
		tracer = obs.NewTracer()
	}

	proxy := fleet.NewProxy(replicas, fleet.Options{
		Vnodes:         *vnodes,
		HealthInterval: *healthInterval,
		Tracer:         tracer,
		Logger:         logger,
	})
	healthCtx, stopHealth := context.WithCancel(ctx)
	defer stopHealth()
	go proxy.Run(healthCtx)

	srv := &http.Server{
		Handler:           proxy.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	names := make([]string, len(replicas))
	for i, r := range replicas {
		names[i] = r.Name
	}
	logger.Info(fmt.Sprintf("triosfleet listening on %s (%s), %d replicas: %s",
		ln.Addr(), version.Get(), len(replicas), strings.Join(names, " ")),
		"trace", tracer != nil)
	if ready != nil {
		ready(ln.Addr())
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		debugSrv = &http.Server{Handler: obs.DebugMux(tracer), ReadHeaderTimeout: 10 * time.Second}
		logger.Info(fmt.Sprintf("triosfleet debug listening on %s (pprof + traces)", dln.Addr()))
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("triosfleet debug listener failed", "err", err.Error())
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	logger.Info(fmt.Sprintf("triosfleet draining (deadline %s)", *grace))
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(drainCtx)
	}
	logger.Info("triosfleet stopped")
	return nil
}
