package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trios/internal/service"
)

// startBackends spins n in-process triosd-equivalent backends (the daemon's
// own service handler over httptest) and returns their base URLs.
func startBackends(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		svc := service.New(service.Config{Workers: 2, QueueDepth: 16, CacheEntries: 64})
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

func TestParseReplicas(t *testing.T) {
	reps, err := parseReplicas("http://127.0.0.1:8431, http://127.0.0.1:8432/")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].Name != "127.0.0.1:8431" || reps[1].URL != "http://127.0.0.1:8432" {
		t.Fatalf("parseReplicas = %+v", reps)
	}
	for _, bad := range []string{"", "not-a-url", "127.0.0.1:8431"} {
		if _, err := parseReplicas(bad); err == nil {
			t.Fatalf("parseReplicas(%q) accepted", bad)
		}
	}
}

func TestRunFlagHandling(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out, nil); !errors.Is(err, errFlagParse) {
		t.Fatalf("unknown flag: err = %v, want errFlagParse", err)
	}
	if err := run(context.Background(), []string{}, &out, nil); !errors.Is(err, errFlagParse) {
		t.Fatalf("missing -replicas: err = %v, want errFlagParse", err)
	}
	if err := run(context.Background(), []string{"-version"}, &out, nil); err != nil || out.Len() == 0 {
		t.Fatalf("-version: err=%v output=%q", err, out.String())
	}
}

// TestFleetSmoke boots two real triosd services behind the fleet binary's run
// loop and round-trips a compile plus the fleet health view, then drains.
func TestFleetSmoke(t *testing.T) {
	// Two in-process backends using the daemon's own service handler.
	backends := startBackends(t, 2)

	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-replicas", strings.Join(backends, ","),
			"-health-interval", "100ms",
			"-grace", "5s",
		}, io.Discard, func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-done:
		cancel()
		t.Fatalf("fleet exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("fleet never became ready")
	}

	resp, err := http.Post(base+"/v1/compile", "application/json",
		strings.NewReader(`{"benchmark":"cnx_inplace-4","pipeline":"trios"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet compile status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Trios-Replica") == "" || resp.Header.Get("X-Trios-Cache") != "miss" {
		t.Fatalf("fleet compile headers: replica=%q cache=%q",
			resp.Header.Get("X-Trios-Replica"), resp.Header.Get("X-Trios-Cache"))
	}
	var art struct {
		QASM string `json:"qasm"`
	}
	if err := json.Unmarshal(body, &art); err != nil || !strings.HasPrefix(art.QASM, "OPENQASM 2.0;") {
		t.Fatalf("fleet compile body looks wrong: %s", body)
	}

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hraw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	var health struct {
		Status   string `json:"status"`
		Replicas []struct {
			Status string `json:"status"`
		} `json:"replicas"`
	}
	if err := json.Unmarshal(hraw, &health); err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK || len(health.Replicas) != 2 {
		t.Fatalf("fleet healthz %d: %s", hresp.StatusCode, hraw)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful drain returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("fleet did not drain after cancel")
	}
}
