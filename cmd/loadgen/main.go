// Command loadgen is a closed-loop load generator for triosd and triosfleet:
// -concurrency workers each keep exactly one request in flight, replaying a
// benchmark mix round-robin against POST /v1/compile until -duration (or
// -requests) elapses, then report throughput, latency quantiles, per-status
// counts, the cache hit rate observed via the X-Trios-Cache response header
// (disk-tier hits included), and — when driving a fleet — the per-replica
// request counts observed via X-Trios-Replica. The machine-readable report
// lands in -out (BENCH_service.json).
//
// With -phase NAME the report is instead merged into a fleet benchmark file
// (default BENCH_fleet.json) under phases.NAME, and the derived fleet
// metrics are recomputed from the phases present: fleet_vs_single_speedup
// from phases "fleet" and "single", warm_restart_hit_rate from phase "warm",
// tracing_on_vs_off_ratio from phases "obs-on" and "obs-off". The
// -min-hit-rate, -min-disk-hits, -min-speedup, and -min-tracing-ratio flags
// turn the run into an assertion, for CI.
//
// Tracing-aware runs: each response's X-Trios-Trace is recorded, the report
// carries the trace ID of the slowest observed request (slowest_trace, for
// cross-referencing with GET /debug/traces), and -check-traces asserts after
// the run that the daemon's trace ring retained a non-empty slowest trace.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8421 -concurrency 8 -duration 10s -out BENCH_service.json
//	loadgen -addr http://127.0.0.1:8420 -phase fleet -out BENCH_fleet.json
//	loadgen -addr http://127.0.0.1:8421 -ping   # healthz probe, for scripts
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trios/internal/benchmarks"
	"trios/internal/obs"
	"trios/internal/service"
	"trios/internal/version"
)

// options is the parsed flag set for one load run.
type options struct {
	addr        string
	concurrency int
	duration    time.Duration
	requests    int
	mix         string
	pipelines   string
	topology    string
	seed        int64
	seeds       string
	out         string
	phase       string
	minHitRate  float64
	minDiskHits int
	minSpeedup  float64

	minTracingRatio float64
	checkTraces     bool

	// Streaming mode: when streamGates > 0 the workers drive POST
	// /v1/compile/stream with generated QASM streams instead of replaying
	// the JSON benchmark mix.
	streamGates  int
	streamKind   string
	streamQubits int
	streamWindow int
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", "http://127.0.0.1:8421", "triosd or triosfleet base URL")
	flag.IntVar(&opts.concurrency, "concurrency", 8, "workers, each with one request in flight")
	flag.DurationVar(&opts.duration, "duration", 10*time.Second, "how long to drive load")
	flag.IntVar(&opts.requests, "requests", 0, "stop after this many requests (0 = duration only)")
	flag.StringVar(&opts.mix, "mix", "bv-20,qft_adder-16,qaoa_complete-10,cnx_dirty-11,grovers-9", "comma-separated benchmark names to replay")
	flag.StringVar(&opts.pipelines, "pipelines", "baseline,trios", "comma-separated pipelines crossed with the mix")
	flag.StringVar(&opts.topology, "topology", "johannesburg", "target device for every request")
	flag.Int64Var(&opts.seed, "seed", 1, "compile seed (constant across the run, so repeats hit the cache)")
	flag.StringVar(&opts.seeds, "seeds", "", "comma-separated seed list crossed with the mix (overrides -seed; widens the distinct-key set for fleet sharding)")
	flag.StringVar(&opts.out, "out", "BENCH_service.json", "write the JSON report here ('' = stdout only)")
	flag.StringVar(&opts.phase, "phase", "", "merge the report into a fleet benchmark file under phases.NAME instead of overwriting -out")
	flag.Float64Var(&opts.minHitRate, "min-hit-rate", -1, "fail unless this run's cache hit rate (disk hits included) reaches this fraction")
	flag.IntVar(&opts.minDiskHits, "min-disk-hits", -1, "fail unless this run observed at least this many disk-tier (hit-disk) responses")
	flag.Float64Var(&opts.minSpeedup, "min-speedup", -1, "fail unless fleet_vs_single_speedup (needs phases fleet and single) reaches this")
	flag.Float64Var(&opts.minTracingRatio, "min-tracing-ratio", -1, "fail unless tracing_on_vs_off_ratio (needs phases obs-on and obs-off) reaches this")
	flag.BoolVar(&opts.checkTraces, "check-traces", false, "after the run, fetch /debug/traces and fail unless a non-empty slowest trace was retained")
	flag.IntVar(&opts.streamGates, "stream-gates", 0, "drive POST /v1/compile/stream with generated circuits of this many gates instead of the JSON mix (0 = off)")
	flag.StringVar(&opts.streamKind, "stream-kind", "cliffordt", "generated stream workload: qaoa or cliffordt (with -stream-gates)")
	flag.IntVar(&opts.streamQubits, "stream-qubits", 16, "qubit count of generated streams (with -stream-gates)")
	flag.IntVar(&opts.streamWindow, "stream-window", 0, "per-request ?window=N override for streaming requests (0 = server default)")
	ping := flag.Bool("ping", false, "probe GET /healthz and exit 0 when the daemon is up")
	showVersion := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	if *ping {
		if err := pingHealthz(opts.addr); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func pingHealthz(addr string) error {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(strings.TrimSuffix(addr, "/") + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return nil
}

// sample is one completed request.
type sample struct {
	latency time.Duration
	status  int
	cache   string // X-Trios-Cache: hit | hit-disk | miss | coalesced (2xx only)
	replica string // X-Trios-Replica when a fleet proxy answered
	trace   string // X-Trios-Trace when the daemon traces requests
	// retryAfter is the admission backoff on a 429 (Retry-After header,
	// floored at 100ms); stream workers wait it out and resubmit.
	retryAfter time.Duration
}

// Report is the per-run schema: BENCH_service.json, or one phase of
// BENCH_fleet.json.
type Report struct {
	Config struct {
		Addr        string   `json:"addr"`
		Concurrency int      `json:"concurrency"`
		Mix         []string `json:"mix"`
		Pipelines   []string `json:"pipelines"`
		Topology    string   `json:"topology"`
		Seed        int64    `json:"seed"`
		Seeds       []int64  `json:"seeds,omitempty"`
		// DistinctBodies is the number of distinct request bodies (= distinct
		// cache keys) the mix replays.
		DistinctBodies int `json:"distinct_bodies"`
	} `json:"config"`
	// GOMAXPROCS and EffectiveWorkers record the parallelism this run
	// actually had, so a report from a throttled environment is legible.
	GOMAXPROCS       int            `json:"gomaxprocs"`
	EffectiveWorkers int            `json:"effective_workers"`
	DurationSeconds  float64        `json:"duration_seconds"`
	Requests         int            `json:"requests"`
	Errors           int            `json:"errors"`
	StatusCounts     map[string]int `json:"status_counts"`
	ThroughputRPS    float64        `json:"throughput_rps"`
	LatencyMS        struct {
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	} `json:"latency_ms"`
	Cache struct {
		Hits      int `json:"hits"`
		DiskHits  int `json:"disk_hits"`
		Misses    int `json:"misses"`
		Coalesced int `json:"coalesced"`
		// HitRate counts both cache tiers: (hits + disk_hits) / decided.
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
	// Replicas maps replica name -> requests it answered (fleet runs only).
	Replicas map[string]int `json:"replicas,omitempty"`
	// TracedRequests counts 2xx responses that carried X-Trios-Trace;
	// SlowestTrace is the trace ID of the slowest such response, for
	// cross-referencing with GET /debug/traces on the daemon.
	TracedRequests int    `json:"traced_requests,omitempty"`
	SlowestTrace   string `json:"slowest_trace,omitempty"`
}

// FleetReport is the BENCH_fleet.json schema: one Report per named phase plus
// metrics derived across phases.
type FleetReport struct {
	Phases map[string]*Report `json:"phases"`
	// FleetVsSingleSpeedup = phases.fleet.throughput / phases.single.throughput.
	FleetVsSingleSpeedup float64 `json:"fleet_vs_single_speedup,omitempty"`
	// WarmRestartHitRate = phases.warm.cache.hit_rate.
	WarmRestartHitRate float64 `json:"warm_restart_hit_rate,omitempty"`
	// TracingOnVsOffRatio = phases.obs-on.throughput / phases.obs-off.throughput:
	// the fraction of throughput retained with tracing enabled (1.0 = free).
	TracingOnVsOffRatio float64 `json:"tracing_on_vs_off_ratio,omitempty"`
}

func run(opts options) error {
	if opts.concurrency < 1 {
		return fmt.Errorf("concurrency must be >= 1")
	}
	if opts.streamGates > 0 {
		return runStream(opts)
	}
	benches := splitList(opts.mix)
	pipes := splitList(opts.pipelines)
	if len(benches) == 0 || len(pipes) == 0 {
		return fmt.Errorf("empty -mix or -pipelines")
	}
	seeds := []int64{opts.seed}
	if opts.seeds != "" {
		seeds = seeds[:0]
		for _, s := range splitList(opts.seeds) {
			var v int64
			if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
				return fmt.Errorf("bad -seeds entry %q", s)
			}
			seeds = append(seeds, v)
		}
	}
	var bodies [][]byte
	for _, b := range benches {
		for _, p := range pipes {
			for i := range seeds {
				req := service.CompileRequest{Benchmark: b, Topology: opts.topology, Pipeline: p, Seed: &seeds[i]}
				body, err := json.Marshal(req)
				if err != nil {
					return err
				}
				bodies = append(bodies, body)
			}
		}
	}

	url := strings.TrimSuffix(opts.addr, "/") + "/v1/compile"
	client := &http.Client{Timeout: 60 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), opts.duration)
	defer cancel()

	var next atomic.Int64
	var wg sync.WaitGroup
	perWorker := make([][]sample, opts.concurrency)
	start := time.Now()
	for w := 0; w < opts.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := next.Add(1) - 1
				if opts.requests > 0 && i >= int64(opts.requests) {
					return
				}
				body := bodies[i%int64(len(bodies))]
				s, err := shoot(ctx, client, url, body)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					s = sample{status: 0}
				}
				perWorker[w] = append(perWorker[w], s)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []sample
	for _, s := range perWorker {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return fmt.Errorf("no requests completed; is triosd running at %s?", opts.addr)
	}
	rep := summarize(all, elapsed)
	rep.Config.Addr = opts.addr
	rep.Config.Concurrency = opts.concurrency
	rep.Config.Mix = benches
	rep.Config.Pipelines = pipes
	rep.Config.Topology = opts.topology
	rep.Config.Seed = opts.seed
	if opts.seeds != "" {
		rep.Config.Seeds = seeds
	}
	rep.Config.DistinctBodies = len(bodies)
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.EffectiveWorkers = opts.concurrency

	var fleetRep *FleetReport
	if opts.phase != "" {
		var err error
		if fleetRep, err = mergePhase(opts.out, opts.phase, rep); err != nil {
			return err
		}
	} else if opts.out != "" {
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	}

	fmt.Printf("loadgen: %d requests in %.2fs  %.1f req/s  p50 %.2fms  p95 %.2fms  p99 %.2fms  hit rate %.1f%% (%d disk)  errors %d\n",
		rep.Requests, rep.DurationSeconds, rep.ThroughputRPS,
		rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99,
		100*rep.Cache.HitRate, rep.Cache.DiskHits, rep.Errors)
	if len(rep.Replicas) > 0 {
		parts := make([]string, 0, len(rep.Replicas))
		for _, name := range sortedKeys(rep.Replicas) {
			parts = append(parts, fmt.Sprintf("%s=%d", name, rep.Replicas[name]))
		}
		fmt.Printf("loadgen: replicas %s\n", strings.Join(parts, " "))
	}
	if opts.out != "" {
		if opts.phase != "" {
			fmt.Printf("loadgen: merged phase %q into %s\n", opts.phase, opts.out)
		} else {
			fmt.Printf("loadgen: wrote %s\n", opts.out)
		}
	}

	if rep.SlowestTrace != "" {
		fmt.Printf("loadgen: %d/%d responses traced, slowest trace %s\n",
			rep.TracedRequests, rep.Requests-rep.Errors, rep.SlowestTrace)
	}

	if float64(rep.Errors) > 0.01*float64(rep.Requests) {
		return fmt.Errorf("error rate %.1f%% exceeds 1%%", 100*float64(rep.Errors)/float64(rep.Requests))
	}
	if opts.checkTraces {
		if err := checkDebugTraces(opts.addr); err != nil {
			return err
		}
	}
	return assert(opts, rep, fleetRep)
}

// runStream is the -stream-gates mode: each worker posts a freshly generated
// QASM stream (distinct seed per request, so every compile is distinct work)
// to /v1/compile/stream and drains the chunked response. The cache is
// bypassed by the endpoint, so the report's hit rate is structurally zero;
// throughput and latency are the signal.
func runStream(opts options) error {
	var gen func(n, gates int, seed int64) io.Reader
	switch opts.streamKind {
	case "qaoa":
		gen = benchmarks.StreamQAOA
	case "cliffordt":
		gen = benchmarks.StreamCliffordT
	default:
		return fmt.Errorf("unknown -stream-kind %q (want qaoa or cliffordt)", opts.streamKind)
	}
	pipes := splitList(opts.pipelines)
	if len(pipes) == 0 {
		return fmt.Errorf("empty -pipelines")
	}
	base := strings.TrimSuffix(opts.addr, "/") + "/v1/compile/stream"
	client := &http.Client{Timeout: 10 * time.Minute} // a stream holds its connection for the whole compile
	ctx, cancel := context.WithTimeout(context.Background(), opts.duration)
	defer cancel()

	var next atomic.Int64
	var wg sync.WaitGroup
	perWorker := make([][]sample, opts.concurrency)
	start := time.Now()
	for w := 0; w < opts.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := next.Add(1) - 1
				if opts.requests > 0 && i >= int64(opts.requests) {
					return
				}
				q := url.Values{}
				q.Set("topology", opts.topology)
				q.Set("pipeline", pipes[i%int64(len(pipes))])
				q.Set("seed", fmt.Sprintf("%d", opts.seed))
				if opts.streamWindow > 0 {
					q.Set("window", fmt.Sprintf("%d", opts.streamWindow))
				}
				// Streams bypass the daemon's job queue and are admitted
				// against the worker budget directly, so a closed-loop
				// harness with more workers than the daemon sees 429 +
				// Retry-After. Honor it like a real client: back off and
				// regenerate the body (the reader was consumed).
				var s sample
				for {
					var err error
					body := gen(opts.streamQubits, opts.streamGates, opts.seed+i)
					s, err = shootStream(ctx, client, base+"?"+q.Encode(), body)
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						s = sample{status: 0}
					}
					if s.status != http.StatusTooManyRequests {
						break
					}
					select {
					case <-ctx.Done():
						return
					case <-time.After(s.retryAfter):
					}
				}
				perWorker[w] = append(perWorker[w], s)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []sample
	for _, s := range perWorker {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return fmt.Errorf("no requests completed; is triosd running at %s?", opts.addr)
	}
	rep := summarize(all, elapsed)
	rep.Config.Addr = opts.addr
	rep.Config.Concurrency = opts.concurrency
	rep.Config.Mix = []string{fmt.Sprintf("stream:%s-%dq-%dg", opts.streamKind, opts.streamQubits, opts.streamGates)}
	rep.Config.Pipelines = pipes
	rep.Config.Topology = opts.topology
	rep.Config.Seed = opts.seed
	rep.Config.DistinctBodies = rep.Requests // every stream is a distinct seed
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.EffectiveWorkers = opts.concurrency

	var fleetRep *FleetReport
	if opts.phase != "" {
		var err error
		if fleetRep, err = mergePhase(opts.out, opts.phase, rep); err != nil {
			return err
		}
	} else if opts.out != "" {
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("loadgen: %d streams (%d gates each) in %.2fs  %.2f streams/s  p50 %.0fms  p95 %.0fms  errors %d\n",
		rep.Requests, opts.streamGates, rep.DurationSeconds, rep.ThroughputRPS,
		rep.LatencyMS.P50, rep.LatencyMS.P95, rep.Errors)
	if opts.out != "" {
		fmt.Printf("loadgen: wrote %s\n", opts.out)
	}
	if float64(rep.Errors) > 0.01*float64(rep.Requests) {
		return fmt.Errorf("error rate %.1f%% exceeds 1%%", 100*float64(rep.Errors)/float64(rep.Requests))
	}
	return assert(opts, rep, fleetRep)
}

// shootStream posts one generated stream and drains the chunked response,
// requiring the stats trailer that marks a complete, successful compile.
func shootStream(ctx context.Context, client *http.Client, url string, body io.Reader) (sample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, body)
	if err != nil {
		return sample{}, err
	}
	req.Header.Set("Content-Type", "text/plain")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{}, err
	}
	defer resp.Body.Close()
	// Drain while keeping a rolling 64 KiB tail: the trailer on the last
	// line decides success.
	const keep = 64 << 10
	var tail []byte
	buf := make([]byte, keep)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			tail = append(tail, buf[:n]...)
			if len(tail) > keep {
				copy(tail, tail[len(tail)-keep:])
				tail = tail[:keep]
			}
		}
		if rerr != nil {
			break
		}
	}
	s := sample{
		latency:    time.Since(start),
		status:     resp.StatusCode,
		cache:      resp.Header.Get("X-Trios-Cache"),
		replica:    resp.Header.Get("X-Trios-Replica"),
		trace:      resp.Header.Get(obs.TraceHeader),
		retryAfter: 100 * time.Millisecond,
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		s.retryAfter = time.Duration(secs) * time.Second
	}
	if s.status == http.StatusOK && !bytes.Contains(tail, []byte("// trios-stream: ")) {
		s.status = 0 // 200 without a trailer is a failed or truncated stream
	}
	return s, nil
}

// mergePhase folds rep into the FleetReport at path under phases[name],
// recomputes the cross-phase metrics, and writes the file back.
func mergePhase(path, name string, rep *Report) (*FleetReport, error) {
	fleet := &FleetReport{Phases: make(map[string]*Report)}
	if path != "" {
		if raw, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(raw, fleet); err != nil {
				return nil, fmt.Errorf("existing %s is not a fleet report: %v", path, err)
			}
			if fleet.Phases == nil {
				fleet.Phases = make(map[string]*Report)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	fleet.Phases[name] = rep
	if single, ok := fleet.Phases["single"]; ok && single.ThroughputRPS > 0 {
		if f, ok := fleet.Phases["fleet"]; ok {
			fleet.FleetVsSingleSpeedup = f.ThroughputRPS / single.ThroughputRPS
		}
	}
	if warm, ok := fleet.Phases["warm"]; ok {
		fleet.WarmRestartHitRate = warm.Cache.HitRate
	}
	if off, ok := fleet.Phases["obs-off"]; ok && off.ThroughputRPS > 0 {
		if on, ok := fleet.Phases["obs-on"]; ok {
			fleet.TracingOnVsOffRatio = on.ThroughputRPS / off.ThroughputRPS
		}
	}
	if path != "" {
		enc, err := json.MarshalIndent(fleet, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return fleet, nil
}

// assert applies the -min-* acceptance thresholds.
func assert(opts options, rep *Report, fleet *FleetReport) error {
	if opts.minHitRate >= 0 && rep.Cache.HitRate < opts.minHitRate {
		return fmt.Errorf("hit rate %.3f below -min-hit-rate %.3f", rep.Cache.HitRate, opts.minHitRate)
	}
	if opts.minDiskHits >= 0 && rep.Cache.DiskHits < opts.minDiskHits {
		return fmt.Errorf("disk hits %d below -min-disk-hits %d", rep.Cache.DiskHits, opts.minDiskHits)
	}
	if opts.minSpeedup >= 0 {
		if fleet == nil || fleet.FleetVsSingleSpeedup == 0 {
			return fmt.Errorf("-min-speedup needs phases %q and %q in the fleet report", "fleet", "single")
		}
		if fleet.FleetVsSingleSpeedup < opts.minSpeedup {
			return fmt.Errorf("fleet_vs_single_speedup %.2f below -min-speedup %.2f", fleet.FleetVsSingleSpeedup, opts.minSpeedup)
		}
		fmt.Printf("loadgen: fleet_vs_single_speedup %.2fx (>= %.2f required)\n", fleet.FleetVsSingleSpeedup, opts.minSpeedup)
	}
	if opts.minTracingRatio >= 0 {
		if fleet == nil || fleet.TracingOnVsOffRatio == 0 {
			return fmt.Errorf("-min-tracing-ratio needs phases %q and %q in the fleet report", "obs-on", "obs-off")
		}
		if fleet.TracingOnVsOffRatio < opts.minTracingRatio {
			return fmt.Errorf("tracing_on_vs_off_ratio %.3f below -min-tracing-ratio %.3f", fleet.TracingOnVsOffRatio, opts.minTracingRatio)
		}
		fmt.Printf("loadgen: tracing_on_vs_off_ratio %.3f (>= %.3f required)\n", fleet.TracingOnVsOffRatio, opts.minTracingRatio)
	}
	return nil
}

// checkDebugTraces asserts the daemon's trace ring retained work from this
// run: GET /debug/traces?format=json must report tracing enabled and a
// slowest trace with at least one span.
func checkDebugTraces(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(strings.TrimSuffix(addr, "/") + "/debug/traces?format=json")
	if err != nil {
		return fmt.Errorf("-check-traces: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("-check-traces: /debug/traces returned %d", resp.StatusCode)
	}
	var body struct {
		Enabled bool               `json:"enabled"`
		Ended   uint64             `json:"traces_ended"`
		Slowest []obs.TraceSummary `json:"slowest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("-check-traces: bad /debug/traces JSON: %v", err)
	}
	if !body.Enabled {
		return fmt.Errorf("-check-traces: tracing is disabled on %s", addr)
	}
	if len(body.Slowest) == 0 || len(body.Slowest[0].Spans) == 0 {
		return fmt.Errorf("-check-traces: no slowest trace retained after the run")
	}
	fmt.Printf("loadgen: trace ring ok (%d traces completed, slowest %s %s)\n",
		body.Ended, body.Slowest[0].TraceID, body.Slowest[0].Root)
	return nil
}

func shoot(ctx context.Context, client *http.Client, url string, body []byte) (sample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return sample{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{}, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{
		latency: time.Since(start),
		status:  resp.StatusCode,
		cache:   resp.Header.Get("X-Trios-Cache"),
		replica: resp.Header.Get("X-Trios-Replica"),
		trace:   resp.Header.Get(obs.TraceHeader),
	}, nil
}

func summarize(all []sample, elapsed time.Duration) *Report {
	rep := &Report{StatusCounts: make(map[string]int)}
	latencies := make([]float64, 0, len(all))
	var sum float64
	var slowest time.Duration
	for _, s := range all {
		rep.Requests++
		key := fmt.Sprintf("%d", s.status)
		if s.status == 0 {
			key = "transport_error"
		}
		rep.StatusCounts[key]++
		if s.status < 200 || s.status >= 300 {
			rep.Errors++
			continue
		}
		if s.replica != "" {
			if rep.Replicas == nil {
				rep.Replicas = make(map[string]int)
			}
			rep.Replicas[s.replica]++
		}
		if s.trace != "" {
			rep.TracedRequests++
			if rep.SlowestTrace == "" || s.latency > slowest {
				rep.SlowestTrace = s.trace
				slowest = s.latency
			}
		}
		ms := float64(s.latency) / float64(time.Millisecond)
		latencies = append(latencies, ms)
		sum += ms
		switch s.cache {
		case "hit":
			rep.Cache.Hits++
		case "hit-disk":
			rep.Cache.DiskHits++
		case "coalesced":
			rep.Cache.Coalesced++
		default:
			rep.Cache.Misses++
		}
	}
	rep.DurationSeconds = elapsed.Seconds()
	if rep.DurationSeconds > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / rep.DurationSeconds
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		rep.LatencyMS.P50 = quantile(latencies, 0.50)
		rep.LatencyMS.P95 = quantile(latencies, 0.95)
		rep.LatencyMS.P99 = quantile(latencies, 0.99)
		rep.LatencyMS.Mean = sum / float64(len(latencies))
		rep.LatencyMS.Max = latencies[len(latencies)-1]
	}
	if ok := rep.Cache.Hits + rep.Cache.DiskHits + rep.Cache.Misses + rep.Cache.Coalesced; ok > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits+rep.Cache.DiskHits) / float64(ok)
	}
	return rep
}

// quantile returns the q-th quantile of sorted values (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
