// Command loadgen is a closed-loop load generator for triosd: -concurrency
// workers each keep exactly one request in flight, replaying a benchmark mix
// round-robin against POST /v1/compile until -duration (or -requests)
// elapses, then report throughput, latency quantiles, per-status counts, and
// the cache hit rate observed via the X-Trios-Cache response header. The
// machine-readable report lands in -out (BENCH_service.json).
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8421 -concurrency 8 -duration 10s -out BENCH_service.json
//	loadgen -addr http://127.0.0.1:8421 -ping   # healthz probe, for scripts
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trios/internal/service"
	"trios/internal/version"
)

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8421", "triosd base URL")
		concurrency = flag.Int("concurrency", 8, "workers, each with one request in flight")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		requests    = flag.Int("requests", 0, "stop after this many requests (0 = duration only)")
		mix         = flag.String("mix", "bv-20,qft_adder-16,qaoa_complete-10,cnx_dirty-11,grovers-9", "comma-separated benchmark names to replay")
		pipelines   = flag.String("pipelines", "baseline,trios", "comma-separated pipelines crossed with the mix")
		topology    = flag.String("topology", "johannesburg", "target device for every request")
		seed        = flag.Int64("seed", 1, "compile seed (constant across the run, so repeats hit the cache)")
		out         = flag.String("out", "BENCH_service.json", "write the JSON report here ('' = stdout only)")
		ping        = flag.Bool("ping", false, "probe GET /healthz and exit 0 when the daemon is up")
		showVersion = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return
	}
	if *ping {
		if err := pingHealthz(*addr); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*addr, *concurrency, *duration, *requests, *mix, *pipelines, *topology, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func pingHealthz(addr string) error {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(strings.TrimSuffix(addr, "/") + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return nil
}

// sample is one completed request.
type sample struct {
	latency time.Duration
	status  int
	cache   string // X-Trios-Cache: hit | miss | coalesced (2xx only)
}

// Report is the BENCH_service.json schema.
type Report struct {
	Config struct {
		Addr        string   `json:"addr"`
		Concurrency int      `json:"concurrency"`
		Mix         []string `json:"mix"`
		Pipelines   []string `json:"pipelines"`
		Topology    string   `json:"topology"`
		Seed        int64    `json:"seed"`
	} `json:"config"`
	DurationSeconds float64        `json:"duration_seconds"`
	Requests        int            `json:"requests"`
	Errors          int            `json:"errors"`
	StatusCounts    map[string]int `json:"status_counts"`
	ThroughputRPS   float64        `json:"throughput_rps"`
	LatencyMS       struct {
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	} `json:"latency_ms"`
	Cache struct {
		Hits      int     `json:"hits"`
		Misses    int     `json:"misses"`
		Coalesced int     `json:"coalesced"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"cache"`
}

func run(addr string, concurrency int, duration time.Duration, maxRequests int, mix, pipelines, topology string, seed int64, out string) error {
	if concurrency < 1 {
		return fmt.Errorf("concurrency must be >= 1")
	}
	benches := splitList(mix)
	pipes := splitList(pipelines)
	if len(benches) == 0 || len(pipes) == 0 {
		return fmt.Errorf("empty -mix or -pipelines")
	}
	var bodies [][]byte
	for _, b := range benches {
		for _, p := range pipes {
			req := service.CompileRequest{Benchmark: b, Topology: topology, Pipeline: p, Seed: &seed}
			body, err := json.Marshal(req)
			if err != nil {
				return err
			}
			bodies = append(bodies, body)
		}
	}

	url := strings.TrimSuffix(addr, "/") + "/v1/compile"
	client := &http.Client{Timeout: 60 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	var next atomic.Int64
	var wg sync.WaitGroup
	perWorker := make([][]sample, concurrency)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := next.Add(1) - 1
				if maxRequests > 0 && i >= int64(maxRequests) {
					return
				}
				body := bodies[i%int64(len(bodies))]
				s, err := shoot(ctx, client, url, body)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					s = sample{status: 0}
				}
				perWorker[w] = append(perWorker[w], s)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []sample
	for _, s := range perWorker {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return fmt.Errorf("no requests completed; is triosd running at %s?", addr)
	}
	rep := summarize(all, elapsed)
	rep.Config.Addr = addr
	rep.Config.Concurrency = concurrency
	rep.Config.Mix = benches
	rep.Config.Pipelines = pipes
	rep.Config.Topology = topology
	rep.Config.Seed = seed

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if out != "" {
		if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("loadgen: %d requests in %.2fs  %.1f req/s  p50 %.2fms  p95 %.2fms  p99 %.2fms  hit rate %.1f%%  errors %d\n",
		rep.Requests, rep.DurationSeconds, rep.ThroughputRPS,
		rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99,
		100*rep.Cache.HitRate, rep.Errors)
	if out != "" {
		fmt.Printf("loadgen: wrote %s\n", out)
	}
	if float64(rep.Errors) > 0.01*float64(rep.Requests) {
		return fmt.Errorf("error rate %.1f%% exceeds 1%%", 100*float64(rep.Errors)/float64(rep.Requests))
	}
	return nil
}

func shoot(ctx context.Context, client *http.Client, url string, body []byte) (sample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return sample{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{}, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{
		latency: time.Since(start),
		status:  resp.StatusCode,
		cache:   resp.Header.Get("X-Trios-Cache"),
	}, nil
}

func summarize(all []sample, elapsed time.Duration) *Report {
	rep := &Report{StatusCounts: make(map[string]int)}
	latencies := make([]float64, 0, len(all))
	var sum float64
	for _, s := range all {
		rep.Requests++
		key := fmt.Sprintf("%d", s.status)
		if s.status == 0 {
			key = "transport_error"
		}
		rep.StatusCounts[key]++
		if s.status < 200 || s.status >= 300 {
			rep.Errors++
			continue
		}
		ms := float64(s.latency) / float64(time.Millisecond)
		latencies = append(latencies, ms)
		sum += ms
		switch s.cache {
		case "hit":
			rep.Cache.Hits++
		case "coalesced":
			rep.Cache.Coalesced++
		default:
			rep.Cache.Misses++
		}
	}
	rep.DurationSeconds = elapsed.Seconds()
	if rep.DurationSeconds > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / rep.DurationSeconds
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		rep.LatencyMS.P50 = quantile(latencies, 0.50)
		rep.LatencyMS.P95 = quantile(latencies, 0.95)
		rep.LatencyMS.P99 = quantile(latencies, 0.99)
		rep.LatencyMS.Mean = sum / float64(len(latencies))
		rep.LatencyMS.Max = latencies[len(latencies)-1]
	}
	if ok := rep.Cache.Hits + rep.Cache.Misses + rep.Cache.Coalesced; ok > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits) / float64(ok)
	}
	return rep
}

// quantile returns the q-th quantile of sorted values (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
