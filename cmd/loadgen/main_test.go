package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"trios/internal/obs"
	"trios/internal/service"
)

func TestSummarizeCountsBothCacheTiers(t *testing.T) {
	all := []sample{
		{latency: time.Millisecond, status: 200, cache: "miss", replica: "r0", trace: "aa11"},
		{latency: 5 * time.Millisecond, status: 200, cache: "hit", replica: "r0", trace: "bb22"},
		{latency: time.Millisecond, status: 200, cache: "hit-disk", replica: "r1", trace: "cc33"},
		{latency: time.Millisecond, status: 200, cache: "hit-disk", replica: "r1"},
		{latency: time.Millisecond, status: 429},
		{status: 0},
	}
	rep := summarize(all, time.Second)
	if rep.TracedRequests != 3 {
		t.Fatalf("traced requests %d, want 3", rep.TracedRequests)
	}
	if rep.SlowestTrace != "bb22" {
		t.Fatalf("slowest trace %q, want bb22 (the 5ms sample)", rep.SlowestTrace)
	}
	if rep.Cache.Hits != 1 || rep.Cache.DiskHits != 2 || rep.Cache.Misses != 1 {
		t.Fatalf("cache counts: %+v", rep.Cache)
	}
	if want := 3.0 / 4.0; rep.Cache.HitRate != want {
		t.Fatalf("hit rate %v, want %v (disk hits must count)", rep.Cache.HitRate, want)
	}
	if rep.Errors != 2 || rep.StatusCounts["transport_error"] != 1 {
		t.Fatalf("errors=%d statusCounts=%v", rep.Errors, rep.StatusCounts)
	}
	if rep.Replicas["r0"] != 2 || rep.Replicas["r1"] != 2 {
		t.Fatalf("replica counts: %v", rep.Replicas)
	}
}

func phaseReport(rps, hitRate float64) *Report {
	rep := &Report{}
	rep.ThroughputRPS = rps
	rep.Cache.HitRate = hitRate
	return rep
}

func TestMergePhaseDerivesFleetMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")

	if _, err := mergePhase(path, "single", phaseReport(100, 0.5)); err != nil {
		t.Fatal(err)
	}
	fleet, err := mergePhase(path, "fleet", phaseReport(250, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if fleet.FleetVsSingleSpeedup != 2.5 {
		t.Fatalf("speedup %v, want 2.5", fleet.FleetVsSingleSpeedup)
	}
	if fleet, err = mergePhase(path, "warm", phaseReport(300, 0.95)); err != nil {
		t.Fatal(err)
	}
	if fleet.WarmRestartHitRate != 0.95 || fleet.FleetVsSingleSpeedup != 2.5 {
		t.Fatalf("derived metrics: %+v", fleet)
	}
	if _, err = mergePhase(path, "obs-off", phaseReport(200, 0.5)); err != nil {
		t.Fatal(err)
	}
	if fleet, err = mergePhase(path, "obs-on", phaseReport(196, 0.5)); err != nil {
		t.Fatal(err)
	}
	if fleet.TracingOnVsOffRatio != 0.98 {
		t.Fatalf("tracing ratio %v, want 0.98", fleet.TracingOnVsOffRatio)
	}

	// The file on disk holds all three phases and the derived metrics.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk FleetReport
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatal(err)
	}
	if len(onDisk.Phases) != 5 || onDisk.FleetVsSingleSpeedup != 2.5 || onDisk.WarmRestartHitRate != 0.95 || onDisk.TracingOnVsOffRatio != 0.98 {
		t.Fatalf("on-disk report: %s", raw)
	}
}

func TestMergePhaseRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mergePhase(path, "single", phaseReport(1, 1)); err == nil {
		t.Fatal("mergePhase accepted a non-JSON file")
	}
}

func TestAssertThresholds(t *testing.T) {
	rep := phaseReport(100, 0.8)
	rep.Cache.DiskHits = 3

	if err := assert(options{minHitRate: 0.9, minTracingRatio: -1}, rep, nil); err == nil {
		t.Fatal("hit rate 0.8 passed -min-hit-rate 0.9")
	}
	if err := assert(options{minHitRate: 0.8, minDiskHits: 3, minSpeedup: -1, minTracingRatio: -1}, rep, nil); err != nil {
		t.Fatal(err)
	}
	if err := assert(options{minHitRate: -1, minDiskHits: 4, minSpeedup: -1, minTracingRatio: -1}, rep, nil); err == nil {
		t.Fatal("3 disk hits passed -min-disk-hits 4")
	}
	if err := assert(options{minHitRate: -1, minDiskHits: -1, minSpeedup: 2, minTracingRatio: -1}, rep, nil); err == nil {
		t.Fatal("-min-speedup without fleet phases must fail")
	}
	fleet := &FleetReport{FleetVsSingleSpeedup: 2.5}
	if err := assert(options{minHitRate: -1, minDiskHits: -1, minSpeedup: 2, minTracingRatio: -1}, rep, fleet); err != nil {
		t.Fatal(err)
	}
	if err := assert(options{minHitRate: -1, minDiskHits: -1, minSpeedup: 3, minTracingRatio: -1}, rep, fleet); err == nil {
		t.Fatal("speedup 2.5 passed -min-speedup 3")
	}
	if err := assert(options{minHitRate: -1, minDiskHits: -1, minSpeedup: -1, minTracingRatio: 0.95}, rep, fleet); err == nil {
		t.Fatal("-min-tracing-ratio without obs phases must fail")
	}
	fleet.TracingOnVsOffRatio = 0.97
	if err := assert(options{minHitRate: -1, minDiskHits: -1, minSpeedup: -1, minTracingRatio: 0.95}, rep, fleet); err != nil {
		t.Fatal(err)
	}
	if err := assert(options{minHitRate: -1, minDiskHits: -1, minSpeedup: -1, minTracingRatio: 0.99}, rep, fleet); err == nil {
		t.Fatal("ratio 0.97 passed -min-tracing-ratio 0.99")
	}
}

// TestCheckDebugTraces drives one compile through a traced in-process service
// and asserts checkDebugTraces sees the retained trace; an untraced service
// must fail the check.
func TestCheckDebugTraces(t *testing.T) {
	svc := service.New(service.Config{Workers: 2, Tracer: obs.NewTracer()})
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	if err := checkDebugTraces(srv.URL); err == nil {
		t.Fatal("empty ring passed -check-traces")
	}
	resp, err := http.Post(srv.URL+"/v1/compile", "application/json",
		strings.NewReader(`{"benchmark":"cnx_inplace-4","pipeline":"trios"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err = checkDebugTraces(srv.URL); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkDebugTraces never passed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	off := service.New(service.Config{Workers: 1})
	defer off.Close(context.Background())
	offSrv := httptest.NewServer(off.Handler())
	defer offSrv.Close()
	if err := checkDebugTraces(offSrv.URL); err == nil {
		t.Fatal("tracing-off service passed -check-traces")
	}
}
