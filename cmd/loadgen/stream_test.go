package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"trios/internal/service"
)

// TestRunStreamAgainstService drives the -stream-gates mode end to end
// against an in-process service and checks the written report.
func TestRunStreamAgainstService(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	}()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "BENCH_stream_load.json")
	opts := options{
		addr:         ts.URL,
		concurrency:  2,
		duration:     time.Minute,
		requests:     4,
		pipelines:    "baseline,trios",
		topology:     "johannesburg",
		seed:         1,
		out:          out,
		minHitRate:   -1,
		minDiskHits:  -1,
		minSpeedup:   -1,
		streamGates:  5000,
		streamKind:   "cliffordt",
		streamQubits: 14,
		streamWindow: 512,

		minTracingRatio: -1,
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 4 || rep.Errors != 0 {
		t.Fatalf("requests=%d errors=%d status=%v", rep.Requests, rep.Errors, rep.StatusCounts)
	}
	if rep.StatusCounts["200"] != 4 {
		t.Fatalf("status counts: %v", rep.StatusCounts)
	}
	if len(rep.Config.Mix) != 1 || rep.Config.Mix[0] != "stream:cliffordt-14q-5000g" {
		t.Fatalf("mix: %v", rep.Config.Mix)
	}
}

// TestRunStreamRetriesAdmission overloads a 1-worker daemon with 2 stream
// workers: the surplus stream is admitted only after a 429 + Retry-After
// backoff, which the worker loop must absorb — every request ends 200.
func TestRunStreamRetriesAdmission(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Close(ctx)
	}()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "BENCH_stream_retry.json")
	opts := options{
		addr:         ts.URL,
		concurrency:  2,
		duration:     time.Minute,
		requests:     4,
		pipelines:    "trios",
		topology:     "johannesburg",
		seed:         5,
		out:          out,
		minHitRate:   -1,
		minDiskHits:  -1,
		minSpeedup:   -1,
		streamGates:  20000,
		streamKind:   "qaoa",
		streamQubits: 12,

		minTracingRatio: -1,
	}
	if err := run(opts); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 4 || rep.Errors != 0 || rep.StatusCounts["200"] != 4 {
		t.Fatalf("requests=%d errors=%d status=%v", rep.Requests, rep.Errors, rep.StatusCounts)
	}
}

func TestRunStreamRejectsBadKind(t *testing.T) {
	opts := options{concurrency: 1, streamGates: 10, streamKind: "nosuch", pipelines: "trios"}
	if err := run(opts); err == nil {
		t.Fatal("expected an error for -stream-kind nosuch")
	}
}
