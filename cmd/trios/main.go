// Command trios compiles OpenQASM 2.0 programs for a target device with
// either the conventional (decompose-first) pipeline or the Orchestrated
// Trios pipeline, and reports the compiled statistics the paper evaluates.
// When several pipelines are requested (-pipeline both/all) they compile
// concurrently through the batch engine; -workers caps the parallelism.
//
// Usage:
//
//	trios -in program.qasm -topology johannesburg -pipeline trios -out compiled.qasm
//	trios -benchmark grovers-9 -topology line -pipeline both -stats
//	trios -benchmark cuccaro_adder-20 -pipeline both -model 20x -workers 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"trios/internal/benchmarks"
	"trios/internal/circuit"
	"trios/internal/compiler"
	"trios/internal/decompose"
	"trios/internal/experiments"
	"trios/internal/noise"
	"trios/internal/qasm"
	"trios/internal/sim"
	"trios/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trios:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		inPath     = flag.String("in", "", "input OpenQASM 2.0 file")
		benchName  = flag.String("benchmark", "", "compile a named Table-1 benchmark instead of -in (see -list)")
		list       = flag.Bool("list", false, "list available benchmarks and exit")
		outPath    = flag.String("out", "", "write compiled OpenQASM here (default: stdout when not printing stats)")
		topoName   = flag.String("topology", "johannesburg", "target device: johannesburg, grid, line, clusters, full")
		pipeline   = flag.String("pipeline", "trios", "pipeline: trios, baseline, or both (both implies -stats)")
		mode       = flag.String("toffoli", "auto", "toffoli decomposition: auto, 6, 8")
		routerKind = flag.String("router", "direct", "routing strategy: direct or stochastic")
		placement  = flag.String("placement", "greedy", "initial mapping: greedy, identity, random")
		seed       = flag.Int64("seed", 1, "seed for stochastic routing and random placement")
		stats      = flag.Bool("stats", false, "print compile statistics instead of QASM")
		optimize   = flag.Bool("optimize", false, "run gate cancellation before and after compilation")
		draw       = flag.Bool("draw", false, "print an ASCII diagram of the compiled circuit")
		verify     = flag.Bool("verify", false, "verify the compiled circuit against the source (stabilizer sim for Clifford circuits, statevector for small devices, basis-state spot checks otherwise)")
		model      = flag.String("model", "", "also estimate success probability: 'current' or '<N>x' improvement")
		workers    = flag.Int("workers", 0, "parallel compilation workers when several pipelines run (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		for _, b := range benchmarks.All() {
			m, err := b.Measure()
			if err != nil {
				return err
			}
			fmt.Printf("%-28s %2d qubits, %3d toffolis, %4d cnots\n", b.Name, m.Qubits, m.Toffolis, m.CNOTs)
		}
		return nil
	}

	input, err := loadInput(*inPath, *benchName)
	if err != nil {
		return err
	}
	g, err := topo.ByName(*topoName)
	if err != nil {
		return err
	}
	opts := compiler.Options{Seed: *seed, Optimize: *optimize}
	switch *mode {
	case "auto":
		opts.Mode = decompose.Auto
	case "6":
		opts.Mode = decompose.Six
	case "8":
		opts.Mode = decompose.Eight
	default:
		return fmt.Errorf("unknown -toffoli %q", *mode)
	}
	switch *routerKind {
	case "direct":
		opts.Router = compiler.RouteDirect
	case "stochastic":
		opts.Router = compiler.RouteStochastic
	case "lookahead":
		opts.Router = compiler.RouteLookahead
	default:
		return fmt.Errorf("unknown -router %q", *routerKind)
	}
	switch *placement {
	case "greedy":
		opts.Placement = compiler.PlaceGreedy
	case "identity":
		opts.Placement = compiler.PlaceIdentity
	case "random":
		opts.Placement = compiler.PlaceRandom
	default:
		return fmt.Errorf("unknown -placement %q", *placement)
	}

	var pipes []compiler.Pipeline
	switch *pipeline {
	case "trios":
		pipes = []compiler.Pipeline{compiler.TriosPipeline}
	case "baseline":
		pipes = []compiler.Pipeline{compiler.Conventional}
	case "groups":
		pipes = []compiler.Pipeline{compiler.GroupsPipeline}
	case "both":
		pipes = []compiler.Pipeline{compiler.Conventional, compiler.TriosPipeline}
		*stats = true
	case "all":
		pipes = []compiler.Pipeline{compiler.Conventional, compiler.TriosPipeline, compiler.GroupsPipeline}
		*stats = true
	default:
		return fmt.Errorf("unknown -pipeline %q", *pipeline)
	}

	var noiseModel *noise.Params
	if *model != "" {
		m, err := parseModel(*model)
		if err != nil {
			return err
		}
		noiseModel = &m
	}

	// Compile every requested pipeline through the batch engine, then report
	// in pipeline order (the worker pool changes nothing about the results).
	jobs := make([]compiler.Job, len(pipes))
	for i, pipe := range pipes {
		o := opts
		o.Pipeline = pipe
		jobs[i] = compiler.Job{ID: pipe.String(), Input: input, Graph: g, Opts: o}
	}
	batch := &compiler.Batch{Workers: *workers}
	batchResults, err := batch.Run(context.Background(), jobs)
	if err != nil {
		return err
	}

	for i, pipe := range pipes {
		res, jobErr := batchResults[i].Result, batchResults[i].Err
		if jobErr != nil {
			return fmt.Errorf("%v pipeline: %w", pipe, jobErr)
		}
		if err := res.Verify(); err != nil {
			return err
		}
		if *verify {
			how, err := verifyResult(input, res)
			if err != nil {
				return fmt.Errorf("%v pipeline verification FAILED: %w", pipe, err)
			}
			fmt.Printf("%-9s  verified equivalent to source (%s)\n", pipe, how)
		}
		if *draw {
			fmt.Printf("--- %v pipeline ---\n%s", pipe, res.Physical.Draw())
		}
		if *stats {
			printStats(pipe, res, noiseModel)
			continue
		}
		if *draw {
			continue
		}
		src, err := qasm.Emit(res.Physical)
		if err != nil {
			return err
		}
		if *outPath == "" {
			fmt.Print(src)
		} else if err := os.WriteFile(*outPath, []byte(src), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func loadInput(inPath, benchName string) (*circuit.Circuit, error) {
	switch {
	case inPath != "" && benchName != "":
		return nil, fmt.Errorf("use either -in or -benchmark, not both")
	case inPath != "":
		data, err := os.ReadFile(inPath)
		if err != nil {
			return nil, err
		}
		return qasm.Parse(string(data))
	case benchName != "":
		b, err := benchmarks.ByName(benchName)
		if err != nil {
			return nil, err
		}
		return b.Build()
	}
	return nil, fmt.Errorf("no input: pass -in file.qasm or -benchmark name (see -list)")
}

func parseModel(s string) (noise.Params, error) {
	m := experiments.DefaultModel()
	if s == "current" {
		base := noise.Johannesburg0819()
		base.ReadoutError = 0
		base.Coherence = noise.CoherencePerQubit
		return base, nil
	}
	var factor float64
	if _, err := fmt.Sscanf(s, "%fx", &factor); err != nil || factor <= 0 {
		return m, fmt.Errorf("bad -model %q (want 'current' or e.g. '20x')", s)
	}
	base := noise.Johannesburg0819()
	base.ReadoutError = 0
	base.Coherence = noise.CoherencePerQubit
	return base.Improved(factor), nil
}

// verifyResult checks compiled-vs-source equivalence through the simulation
// engine, which auto-selects the backend: Clifford circuits go to the
// stabilizer tableau (exact at any device size), everything else to the
// fused-kernel statevector up to the dense cap. Classical sources on devices
// too large to hold a statevector fall back to basis-state spot checks.
func verifyResult(input *circuit.Circuit, res *compiler.Result) (string, error) {
	n := input.NumQubits
	devQubits := res.Graph.NumQubits()
	stripped := input.StripPseudo()
	physical := res.Physical.StripPseudo()

	eng := &sim.Engine{}
	clifford := circuit.IsClifford(stripped) && circuit.IsClifford(physical)
	// The engine covers Clifford circuits at any device size and dense
	// verification up to its cap. Prefer cheap classical spot checks over a
	// huge statevector when the source is classical and the device large.
	if clifford || devQubits <= 14 || (devQubits <= sim.MaxQubits && !sim.IsClassical(stripped)) {
		v, err := eng.VerifyCompiled(stripped, physical, devQubits,
			res.Initial[:n], res.Final[:n], 3, 12345)
		if err != nil {
			return "", err
		}
		if !v.Equivalent {
			return "", fmt.Errorf("%s backend: compiled state differs from source", v.Backend)
		}
		switch v.Backend {
		case "stabilizer":
			return "engine: stabilizer tableau, exact", nil
		default:
			return "engine: statevector (fused kernels), 3 random states", nil
		}
	}

	// Large non-Clifford classical circuits: basis-state spot checks through
	// the statevector (the compiled circuit must map prepared basis inputs
	// the same way the source does when the source is classical-in/out).
	for _, in := range []uint64{0, (1 << uint(n)) - 1, 0b1010101 & ((1 << uint(n)) - 1)} {
		srcOut, err := sim.ClassicalOutput(stripped, in)
		if err != nil {
			return "", fmt.Errorf("source is not basis-preserving; cannot spot check: %w", err)
		}
		var physIn uint64
		for v := 0; v < n; v++ {
			if in&(1<<uint(v)) != 0 {
				physIn |= 1 << uint(res.Initial[v])
			}
		}
		physOut, err := sim.ClassicalOutput(physical, physIn)
		if err != nil {
			return "", err
		}
		var back uint64
		for v := 0; v < n; v++ {
			if physOut&(1<<uint(res.Final[v])) != 0 {
				back |= 1 << uint(v)
			}
		}
		if back != srcOut {
			return "", fmt.Errorf("basis input %b maps to %b, want %b", in, back, srcOut)
		}
	}
	return "basis-state spot checks", nil
}

func printStats(pipe compiler.Pipeline, res *compiler.Result, model *noise.Params) {
	s := res.Physical.CollectStats()
	fmt.Printf("%-9s  two-qubit gates %5d  swaps %4d  depth %5d  total gates %6d\n",
		pipe, s.TwoQubit, res.SwapsAdded, res.Physical.Depth(), s.Total)
	if model != nil {
		p, err := noise.SuccessProbability(res.Physical, *model)
		if err != nil {
			fmt.Printf("           success estimate failed: %v\n", err)
			return
		}
		fmt.Printf("           estimated success probability %.4g\n", p)
	}
}
