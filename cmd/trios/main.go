// Command trios compiles OpenQASM 2.0 programs for a target device with
// either the conventional (decompose-first) pipeline or the Orchestrated
// Trios pipeline, and reports the compiled statistics the paper evaluates.
// When several pipelines are requested (-pipeline both/all) they compile
// concurrently through the batch engine; -workers caps the parallelism.
//
// Usage:
//
//	trios -in program.qasm -topology johannesburg -pipeline trios -out compiled.qasm
//	trios -benchmark grovers-9 -topology line -pipeline both -stats
//	trios -benchmark cuccaro_adder-20 -pipeline both -model 20x -workers 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"trios/internal/benchmarks"
	"trios/internal/circuit"
	"trios/internal/compiler"
	"trios/internal/device"
	"trios/internal/experiments"
	"trios/internal/noise"
	"trios/internal/qasm"
	"trios/internal/sim"
	"trios/internal/topo"
	"trios/internal/version"
)

// errFlagParse marks a flag error the FlagSet already reported to stderr
// (message + usage); main must not print it a second time.
var errFlagParse = errors.New("invalid arguments")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errFlagParse) {
			os.Exit(2) // usage error, already reported; 2 matches flag.ExitOnError
		}
		fmt.Fprintln(os.Stderr, "trios:", err)
		os.Exit(1)
	}
}

// run is the testable CLI entry point: flags come from args, all output goes
// to out, and failures return errors instead of exiting.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trios", flag.ContinueOnError)
	var (
		inPath      = fs.String("in", "", "input OpenQASM 2.0 file")
		benchName   = fs.String("benchmark", "", "compile a named Table-1 benchmark instead of -in (see -list)")
		list        = fs.Bool("list", false, "list available benchmarks and exit")
		outPath     = fs.String("out", "", "write compiled OpenQASM here (default: stdout when not printing stats)")
		topoName    = fs.String("topology", "johannesburg", "target device: johannesburg, grid, line, clusters, full")
		pipeline    = fs.String("pipeline", "trios", "pipeline: trios, baseline, groups, both, or all (both/all imply -stats)")
		mode        = fs.String("toffoli", "auto", "toffoli decomposition: auto, 6, 8")
		routerKind  = fs.String("router", "direct", "routing strategy: direct, stochastic, or lookahead")
		placement   = fs.String("placement", "greedy", "initial mapping: greedy, identity, random")
		seed        = fs.Int64("seed", 1, "seed for stochastic routing and random placement")
		stats       = fs.Bool("stats", false, "print compile statistics instead of QASM")
		optimize    = fs.Bool("optimize", false, "run gate cancellation before and after compilation")
		optimizer   = fs.String("optimizer", "saturate", "optimization engine under -optimize: saturate (rewrite-rule engine) or legacy (pairwise cancel loop)")
		calibration = fs.String("calibration", "", "device calibration: a registry name (e.g. johannesburg-0819) or a JSON file; makes compilation noise-aware and reports estimated success + makespan")
		cost        = fs.String("cost", "", "cost model under -calibration: noise (default) or uniform (compile noise-blind, bit-identical to no calibration, but still report fidelity)")
		draw        = fs.Bool("draw", false, "print an ASCII diagram of the compiled circuit")
		verify      = fs.Bool("verify", false, "verify the compiled circuit against the source (stabilizer sim for Clifford circuits, statevector for small devices, basis-state spot checks otherwise)")
		model       = fs.String("model", "", "also estimate success probability: 'current' or '<N>x' improvement")
		workers     = fs.Int("workers", 0, "parallel compilation workers when several pipelines run (0 = GOMAXPROCS)")
		showVersion = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help printed usage; that is success
		}
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}

	if *showVersion {
		fmt.Fprintln(out, version.Get())
		return nil
	}

	if *list {
		for _, b := range benchmarks.All() {
			m, err := b.Measure()
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-28s %2d qubits, %3d toffolis, %4d cnots\n", b.Name, m.Qubits, m.Toffolis, m.CNOTs)
		}
		return nil
	}

	input, err := loadInput(*inPath, *benchName)
	if err != nil {
		return err
	}
	g, err := topo.ByName(*topoName)
	if err != nil {
		return err
	}
	opts := compiler.Options{Seed: *seed, Optimize: *optimize}
	if opts.Mode, err = compiler.ParseToffoli(*mode); err != nil {
		return err
	}
	if opts.Router, err = compiler.ParseRouter(*routerKind); err != nil {
		return err
	}
	if opts.Placement, err = compiler.ParsePlacement(*placement); err != nil {
		return err
	}
	if opts.Optimizer, err = compiler.ParseOptimizer(*optimizer); err != nil {
		return err
	}
	if opts.Calibration, opts.CostModel, err = loadCalibration(*calibration, *cost); err != nil {
		return err
	}

	var pipes []compiler.Pipeline
	switch *pipeline {
	case "both":
		pipes = []compiler.Pipeline{compiler.Conventional, compiler.TriosPipeline}
		*stats = true
	case "all":
		pipes = []compiler.Pipeline{compiler.Conventional, compiler.TriosPipeline, compiler.GroupsPipeline}
		*stats = true
	default:
		p, err := compiler.ParsePipeline(*pipeline)
		if err != nil {
			return err
		}
		pipes = []compiler.Pipeline{p}
	}

	var noiseModel *noise.Params
	if *model != "" {
		m, err := parseModel(*model)
		if err != nil {
			return err
		}
		noiseModel = &m
	}

	// Compile every requested pipeline through the batch engine, then report
	// in pipeline order (the worker pool changes nothing about the results).
	jobs := make([]compiler.Job, len(pipes))
	for i, pipe := range pipes {
		o := opts
		o.Pipeline = pipe
		jobs[i] = compiler.Job{ID: pipe.String(), Input: input, Graph: g, Opts: o}
	}
	batch := &compiler.Batch{Workers: *workers}
	batchResults, err := batch.Run(context.Background(), jobs)
	if err != nil {
		return err
	}

	for i, pipe := range pipes {
		res, jobErr := batchResults[i].Result, batchResults[i].Err
		if jobErr != nil {
			return fmt.Errorf("%v pipeline: %w", pipe, jobErr)
		}
		if err := res.Verify(); err != nil {
			return err
		}
		if *verify {
			how, err := verifyResult(input, res)
			if err != nil {
				return fmt.Errorf("%v pipeline verification FAILED: %w", pipe, err)
			}
			fmt.Fprintf(out, "%-9s  verified equivalent to source (%s)\n", pipe, how)
		}
		if *draw {
			fmt.Fprintf(out, "--- %v pipeline ---\n%s", pipe, res.Physical.Draw())
		}
		if *stats {
			printStats(out, pipe, res, noiseModel)
			continue
		}
		if *draw {
			continue
		}
		src, err := qasm.Emit(res.Physical)
		if err != nil {
			return err
		}
		if *outPath == "" {
			fmt.Fprint(out, src)
		} else if err := os.WriteFile(*outPath, []byte(src), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// loadCalibration resolves -calibration: a registry name first, else a JSON
// calibration file, with -cost parsed by the same helper the wire protocol
// uses so the CLI and the daemon accept one vocabulary.
func loadCalibration(name, cost string) (*device.Calibration, device.CostModel, error) {
	if name == "" || !strings.ContainsAny(name, "./"+string(os.PathSeparator)) {
		return compiler.ResolveCalibration(name, cost)
	}
	cal, err := device.LoadFile(name)
	if err != nil {
		return nil, nil, err
	}
	cm, err := compiler.ParseCost(cost)
	if err != nil {
		return nil, nil, err
	}
	return cal, cm, nil
}

func loadInput(inPath, benchName string) (*circuit.Circuit, error) {
	switch {
	case inPath != "" && benchName != "":
		return nil, fmt.Errorf("use either -in or -benchmark, not both")
	case inPath != "":
		data, err := os.ReadFile(inPath)
		if err != nil {
			return nil, err
		}
		return qasm.Parse(string(data))
	case benchName != "":
		b, err := benchmarks.ByName(benchName)
		if err != nil {
			return nil, err
		}
		return b.Build()
	}
	return nil, fmt.Errorf("no input: pass -in file.qasm or -benchmark name (see -list)")
}

func parseModel(s string) (noise.Params, error) {
	m := experiments.DefaultModel()
	if s == "current" {
		base := noise.Johannesburg0819()
		base.ReadoutError = 0
		base.Coherence = noise.CoherencePerQubit
		return base, nil
	}
	var factor float64
	if _, err := fmt.Sscanf(s, "%fx", &factor); err != nil || factor <= 0 {
		return m, fmt.Errorf("bad -model %q (want 'current' or e.g. '20x')", s)
	}
	base := noise.Johannesburg0819()
	base.ReadoutError = 0
	base.Coherence = noise.CoherencePerQubit
	return base.Improved(factor), nil
}

// verifyResult checks compiled-vs-source equivalence through the simulation
// engine, which auto-selects the backend: Clifford circuits go to the
// stabilizer tableau (exact at any device size), everything else to the
// fused-kernel statevector up to the dense cap. Classical sources on devices
// too large to hold a statevector fall back to basis-state spot checks.
func verifyResult(input *circuit.Circuit, res *compiler.Result) (string, error) {
	n := input.NumQubits
	devQubits := res.Graph.NumQubits()
	stripped := input.StripPseudo()
	physical := res.Physical.StripPseudo()

	eng := &sim.Engine{}
	clifford := circuit.IsClifford(stripped) && circuit.IsClifford(physical)
	// The engine covers Clifford circuits at any device size and dense
	// verification up to its cap. Prefer cheap classical spot checks over a
	// huge statevector when the source is classical and the device large.
	if clifford || devQubits <= 14 || (devQubits <= sim.MaxQubits && !sim.IsClassical(stripped)) {
		v, err := eng.VerifyCompiled(stripped, physical, devQubits,
			res.Initial[:n], res.Final[:n], 3, 12345)
		if err != nil {
			return "", err
		}
		if !v.Equivalent {
			return "", fmt.Errorf("%s backend: compiled state differs from source", v.Backend)
		}
		switch v.Backend {
		case "stabilizer":
			return "engine: stabilizer tableau, exact", nil
		default:
			return "engine: statevector (fused kernels), 3 random states", nil
		}
	}

	// Large non-Clifford classical circuits: basis-state spot checks through
	// the statevector (the compiled circuit must map prepared basis inputs
	// the same way the source does when the source is classical-in/out).
	for _, in := range []uint64{0, (1 << uint(n)) - 1, 0b1010101 & ((1 << uint(n)) - 1)} {
		srcOut, err := sim.ClassicalOutput(stripped, in)
		if err != nil {
			return "", fmt.Errorf("source is not basis-preserving; cannot spot check: %w", err)
		}
		var physIn uint64
		for v := 0; v < n; v++ {
			if in&(1<<uint(v)) != 0 {
				physIn |= 1 << uint(res.Initial[v])
			}
		}
		physOut, err := sim.ClassicalOutput(physical, physIn)
		if err != nil {
			return "", err
		}
		var back uint64
		for v := 0; v < n; v++ {
			if physOut&(1<<uint(res.Final[v])) != 0 {
				back |= 1 << uint(v)
			}
		}
		if back != srcOut {
			return "", fmt.Errorf("basis input %b maps to %b, want %b", in, back, srcOut)
		}
	}
	return "basis-state spot checks", nil
}

func printStats(out io.Writer, pipe compiler.Pipeline, res *compiler.Result, model *noise.Params) {
	s := res.Physical.CollectStats()
	fmt.Fprintf(out, "%-9s  two-qubit gates %5d  swaps %4d  depth %5d  total gates %6d\n",
		pipe, s.TwoQubit, res.SwapsAdded, res.Physical.Depth(), s.Total)
	if res.Makespan > 0 {
		fmt.Fprintf(out, "           calibrated (%s): estimated success %.4g  makespan %.3f us\n",
			res.CostModel, res.EstimatedSuccess, res.Makespan)
	}
	if model != nil {
		p, err := noise.SuccessProbability(res.Physical, *model)
		if err != nil {
			fmt.Fprintf(out, "           success estimate failed: %v\n", err)
			return
		}
		fmt.Fprintf(out, "           estimated success probability %.4g\n", p)
	}
}
