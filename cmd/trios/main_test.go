package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trios/internal/benchmarks"
	"trios/internal/compiler"
	"trios/internal/device"
	"trios/internal/qasm"
	"trios/internal/topo"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("trios %s: %v", strings.Join(args, " "), err)
	}
	return out.String()
}

// TestCompileGolden pins the CLI's QASM output to a direct library compile
// with the same options. Together with the service-side golden test (which
// pins the daemon to the same library call), this guarantees POST
// /v1/compile and `trios` emit byte-identical programs for one request.
func TestCompileGolden(t *testing.T) {
	args := []string{"-benchmark", "cnx_dirty-11", "-topology", "johannesburg", "-pipeline", "trios", "-seed", "7"}
	got := runCLI(t, args...)

	b, err := benchmarks.ByName("cnx_dirty-11")
	if err != nil {
		t.Fatal(err)
	}
	input, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := topo.ByName("johannesburg")
	if err != nil {
		t.Fatal(err)
	}
	res, err := compiler.Compile(input, g, compiler.Options{
		Pipeline: compiler.TriosPipeline, Placement: compiler.PlaceGreedy, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := qasm.Emit(res.Physical)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("CLI output differs from direct compiler.Compile + qasm.Emit")
	}
	// Determinism: a second run is byte-identical.
	if again := runCLI(t, args...); again != got {
		t.Fatal("repeated run produced different output")
	}
}

func TestStatsOutput(t *testing.T) {
	out := runCLI(t, "-benchmark", "bv-20", "-topology", "line", "-pipeline", "both", "-seed", "1")
	if !strings.Contains(out, "two-qubit gates") {
		t.Fatalf("stats output missing header: %q", out)
	}
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "trios") {
		t.Fatalf("expected both pipelines in stats: %q", out)
	}
}

func TestListBenchmarks(t *testing.T) {
	out := runCLI(t, "-list")
	for _, name := range []string{"cnx_dirty-11", "grovers-9", "bv-20"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	out := runCLI(t, "-version")
	if !strings.HasPrefix(out, "trios ") || !strings.Contains(out, "go1.") {
		t.Fatalf("-version output = %q", out)
	}
}

// TestHelpExitsZero: -h prints usage and succeeds, as ExitOnError did.
func TestHelpExitsZero(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("-h returned %v, want nil", err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-benchmark", "no-such-benchmark"},
		{"-topology", "moebius", "-benchmark", "bv-20"},
		{"-pipeline", "warp", "-benchmark", "bv-20"},
		{"-in", "a.qasm", "-benchmark", "bv-20"},
		{"-benchmark", "bv-20", "-calibration", "no-such-calibration"},
		{"-benchmark", "bv-20", "-cost", "uniform"},                                       // cost without calibration
		{"-benchmark", "bv-20", "-calibration", "johannesburg-0819", "-cost", "??"},       // bad cost
		{"-benchmark", "bv-20", "-topology", "full", "-calibration", "johannesburg-0819"}, // uncalibrated device
		{},
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): expected an error", i, args)
		}
	}
}

// TestCalibrationStats: -calibration adds the fidelity block to stats and
// leaves QASM output byte-identical under -cost uniform.
func TestCalibrationStats(t *testing.T) {
	out := runCLI(t, "-benchmark", "cnx_inplace-4", "-pipeline", "trios", "-stats",
		"-calibration", "johannesburg-0819")
	if !strings.Contains(out, "calibrated (noise:johannesburg-0819)") ||
		!strings.Contains(out, "estimated success") || !strings.Contains(out, "makespan") {
		t.Fatalf("calibrated stats missing fidelity block: %q", out)
	}

	plain := runCLI(t, "-benchmark", "cnx_inplace-4", "-pipeline", "trios", "-seed", "3")
	uniform := runCLI(t, "-benchmark", "cnx_inplace-4", "-pipeline", "trios", "-seed", "3",
		"-calibration", "johannesburg-0819", "-cost", "uniform")
	if plain != uniform {
		t.Fatal("-cost uniform changed the emitted QASM")
	}
}

// TestCalibrationFromFile: -calibration accepts a JSON file, exercising the
// load/validate path end to end.
func TestCalibrationFromFile(t *testing.T) {
	cal, err := device.ByName("johannesburg-0819")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(cal)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile := runCLI(t, "-benchmark", "cnx_inplace-4", "-pipeline", "trios", "-stats",
		"-calibration", path)
	fromName := runCLI(t, "-benchmark", "cnx_inplace-4", "-pipeline", "trios", "-stats",
		"-calibration", "johannesburg-0819")
	if fromFile != fromName {
		t.Fatalf("file-loaded calibration compiled differently:\n%q\n%q", fromFile, fromName)
	}

	// A corrupt file is rejected.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"qubits":-1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-benchmark", "bv-20", "-calibration", bad}, &out); err == nil {
		t.Fatal("corrupt calibration file accepted")
	}
}
