package main

import (
	"bytes"
	"strings"
	"testing"

	"trios/internal/benchmarks"
	"trios/internal/compiler"
	"trios/internal/qasm"
	"trios/internal/topo"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("trios %s: %v", strings.Join(args, " "), err)
	}
	return out.String()
}

// TestCompileGolden pins the CLI's QASM output to a direct library compile
// with the same options. Together with the service-side golden test (which
// pins the daemon to the same library call), this guarantees POST
// /v1/compile and `trios` emit byte-identical programs for one request.
func TestCompileGolden(t *testing.T) {
	args := []string{"-benchmark", "cnx_dirty-11", "-topology", "johannesburg", "-pipeline", "trios", "-seed", "7"}
	got := runCLI(t, args...)

	b, err := benchmarks.ByName("cnx_dirty-11")
	if err != nil {
		t.Fatal(err)
	}
	input, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := topo.ByName("johannesburg")
	if err != nil {
		t.Fatal(err)
	}
	res, err := compiler.Compile(input, g, compiler.Options{
		Pipeline: compiler.TriosPipeline, Placement: compiler.PlaceGreedy, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := qasm.Emit(res.Physical)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("CLI output differs from direct compiler.Compile + qasm.Emit")
	}
	// Determinism: a second run is byte-identical.
	if again := runCLI(t, args...); again != got {
		t.Fatal("repeated run produced different output")
	}
}

func TestStatsOutput(t *testing.T) {
	out := runCLI(t, "-benchmark", "bv-20", "-topology", "line", "-pipeline", "both", "-seed", "1")
	if !strings.Contains(out, "two-qubit gates") {
		t.Fatalf("stats output missing header: %q", out)
	}
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "trios") {
		t.Fatalf("expected both pipelines in stats: %q", out)
	}
}

func TestListBenchmarks(t *testing.T) {
	out := runCLI(t, "-list")
	for _, name := range []string{"cnx_dirty-11", "grovers-9", "bv-20"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	out := runCLI(t, "-version")
	if !strings.HasPrefix(out, "trios ") || !strings.Contains(out, "go1.") {
		t.Fatalf("-version output = %q", out)
	}
}

// TestHelpExitsZero: -h prints usage and succeeds, as ExitOnError did.
func TestHelpExitsZero(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("-h returned %v, want nil", err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-benchmark", "no-such-benchmark"},
		{"-topology", "moebius", "-benchmark", "bv-20"},
		{"-pipeline", "warp", "-benchmark", "bv-20"},
		{"-in", "a.qasm", "-benchmark", "bv-20"},
		{},
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): expected an error", i, args)
		}
	}
}
