#!/bin/sh
# bench_service.sh — build triosd + loadgen, serve on a local port, drive the
# standard benchmark mix, and leave BENCH_service.json behind. Used by
# `make bench-service` and the CI serving-smoke job.
#
# Environment knobs:
#   GO                  go binary (default: go)
#   TRIOSD_ADDR         listen address (default: 127.0.0.1:8421)
#   TRIOSD_RACE         set to "-race" to race-instrument the daemon
#   LOADGEN_DURATION    load duration (default: 5s)
#   LOADGEN_CONCURRENCY closed-loop workers (default: 8)
#   LOADGEN_OUT         report path (default: BENCH_service.json)
set -eu

# Parallelism floor: mirror the Makefile's `GOMAXPROCS ?= 4` and export it,
# so a standalone `sh scripts/bench_service.sh` measures the same serving
# parallelism as `make bench-service` — without this the daemon and loadgen
# inherit the runner's core count and the report records gomaxprocs 1 on
# one-core CI. Callers can still override: GOMAXPROCS=8 sh scripts/....
GOMAXPROCS=${GOMAXPROCS:-4}
export GOMAXPROCS

GO=${GO:-go}
ADDR=${TRIOSD_ADDR:-127.0.0.1:8421}
DUR=${LOADGEN_DURATION:-5s}
CONC=${LOADGEN_CONCURRENCY:-8}
OUT=${LOADGEN_OUT:-BENCH_service.json}
RACE=${TRIOSD_RACE:-}

bindir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$bindir"
}
trap cleanup EXIT INT TERM

# shellcheck disable=SC2086 # RACE is intentionally word-split ("-race" or empty)
$GO build $RACE -o "$bindir/triosd" ./cmd/triosd
$GO build -o "$bindir/loadgen" ./cmd/loadgen

"$bindir/triosd" -addr "$ADDR" &
pid=$!

up=""
i=0
while [ $i -lt 50 ]; do
    if "$bindir/loadgen" -addr "http://$ADDR" -ping 2>/dev/null; then
        up=1
        break
    fi
    i=$((i + 1))
    sleep 0.2
done
if [ -z "$up" ]; then
    echo "bench_service: triosd did not become healthy on $ADDR" >&2
    exit 1
fi

# -check-traces: the daemon traces by default, so after the mix the trace
# ring must hold a non-empty slowest trace (asserts the observability path
# stayed wired through the serving stack).
"$bindir/loadgen" -addr "http://$ADDR" -duration "$DUR" -concurrency "$CONC" -out "$OUT" -check-traces

# Graceful shutdown must complete on its own.
kill -TERM "$pid"
wait "$pid"
pid=""
echo "bench_service: wrote $OUT"
