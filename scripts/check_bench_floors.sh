#!/bin/sh
# Floor assertions for the simulation and kernel benchmark artifacts.
#
# PR 3's parallel engine shipped with CI that only checked parallel_speedup
# was *present*, and a 0.79x regression sailed through. This script makes the
# numbers load-bearing:
#
#   BENCH_sim.json     parallel_speedup >= SIM_MIN_SPEEDUP    (default 1.2)
#   BENCH_kernels.json route_stochastic_speedup,
#                      route_lookahead_speedup,
#                      dense_sweep_speedup >= KERNEL_MIN_SPEEDUP (default 1.2)
#                      and identical == true
#   Pass "-" for the sim or kernel path to skip that artifact (for jobs that
#   only produce the optimizer benchmark).
#
#   BENCH_optimize.json (optional third argument) every grid cell's
#                      saturate_two_qubit <= legacy_two_qubit,
#                      saturate_better >= OPT_MIN_BETTER (default 8),
#                      equivalence_ok == true, and
#                      template_min_speedup >= TEMPLATE_MIN_SPEEDUP (default 1.5)
#
#   BENCH_obs.json     (optional fourth argument) tracing_on_vs_off_ratio >=
#                      OBS_MIN_RATIO (default 0.95: request tracing may cost
#                      at most 5% of throughput), with phases obs-on and
#                      obs-off both present and the on-phase traced end to
#                      end (traced_requests > 0, slowest_trace recorded)
#
#   BENCH_stream.json  (optional fifth argument) equivalence_ok == true,
#                      peak_rss_bytes <= window_budget_bytes (the windowed
#                      pipeline's memory claim: the million-gate compile
#                      stays under the report's own window budget), and
#                      pipeline_vs_serial_speedup >= STREAM_MIN_SPEEDUP
#                      (default 1.2) — the speedup floor, like the sim one,
#                      applies only on multi-core hosts; the skip is
#                      auditable via num_cpu in the JSON. The RSS floor
#                      applies everywhere (memory needs no second core).
#
# The parallel floor only applies on multi-core hosts: on a single-core
# machine goroutines cannot run concurrently, so the speedup is ~1.0 by
# physics, not by regression (the JSON records num_cpu so the skip is
# auditable). Override the floors via the environment, e.g.
# SIM_MIN_SPEEDUP=1.8 for a beefy dedicated runner.
set -eu

SIM_MIN_SPEEDUP="${SIM_MIN_SPEEDUP:-1.2}"
KERNEL_MIN_SPEEDUP="${KERNEL_MIN_SPEEDUP:-1.2}"
OPT_MIN_BETTER="${OPT_MIN_BETTER:-8}"
TEMPLATE_MIN_SPEEDUP="${TEMPLATE_MIN_SPEEDUP:-1.5}"
OBS_MIN_RATIO="${OBS_MIN_RATIO:-0.95}"
STREAM_MIN_SPEEDUP="${STREAM_MIN_SPEEDUP:-1.2}"
SIM_JSON="${1:-BENCH_sim.json}"
KERNEL_JSON="${2:-BENCH_kernels.json}"
OPT_JSON="${3:-}"
OBS_JSON="${4:-}"
STREAM_JSON="${5:-}"

python3 - "$SIM_JSON" "$KERNEL_JSON" "$SIM_MIN_SPEEDUP" "$KERNEL_MIN_SPEEDUP" \
    "$OPT_JSON" "$OPT_MIN_BETTER" "$TEMPLATE_MIN_SPEEDUP" \
    "$OBS_JSON" "$OBS_MIN_RATIO" "$STREAM_JSON" "$STREAM_MIN_SPEEDUP" <<'PY'
import json
import sys

sim_path, kernel_path, sim_min, kernel_min = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), float(sys.argv[4]))
opt_path, opt_min_better, template_min = (
    sys.argv[5], int(sys.argv[6]), float(sys.argv[7]))
obs_path, obs_min_ratio = sys.argv[8], float(sys.argv[9])
stream_path, stream_min = sys.argv[10], float(sys.argv[11])
failed = False


def fail(msg):
    global failed
    failed = True
    print(f"FLOOR FAIL: {msg}")


sim = json.load(open(sim_path)) if sim_path != "-" else None
cores = sim.get("num_cpu", 0) if sim else 0
speedup = sim.get("parallel_speedup") if sim else None
if sim is None:
    print("sim floors skipped (-)")
elif cores < 2:
    print(f"{sim_path}: single-core host (num_cpu={cores}); "
          f"parallel floor skipped, parallel_speedup={speedup}")
elif speedup is None:
    fail(f"{sim_path}: parallel_speedup missing on a {cores}-core host")
elif speedup < sim_min:
    fail(f"{sim_path}: parallel_speedup {speedup:.2f} < floor {sim_min}")
else:
    print(f"{sim_path}: parallel_speedup {speedup:.2f} >= {sim_min} ok "
          f"({sim.get('effective_workers')} workers, {cores} cores)")

if kernel_path == "-":
    print("kernel floors skipped (-)")
else:
    kern = json.load(open(kernel_path))
    if not kern.get("identical", False):
        fail(f"{kernel_path}: a new arm diverged from its legacy arm")
    for key in ("route_stochastic_speedup", "route_lookahead_speedup",
                "dense_sweep_speedup"):
        v = kern.get(key)
        if v is None:
            fail(f"{kernel_path}: {key} missing")
        elif v < kernel_min:
            fail(f"{kernel_path}: {key} {v:.2f} < floor {kernel_min}")
        else:
            print(f"{kernel_path}: {key} {v:.2f} >= {kernel_min} ok")

if opt_path:
    opt = json.load(open(opt_path))
    rows = opt.get("rows", [])
    if not rows:
        fail(f"{opt_path}: no grid rows")
    regressed = [r for r in rows
                 if r.get("saturate_two_qubit", 0) > r.get("legacy_two_qubit", 0)]
    for r in regressed:
        fail(f"{opt_path}: {r['benchmark']} {r['pipeline']} on {r['topology']}: "
             f"saturate {r['saturate_two_qubit']} > legacy {r['legacy_two_qubit']}")
    if not regressed and rows:
        print(f"{opt_path}: saturate <= legacy two-qubit count on all "
              f"{len(rows)} grid cells ok")
    better = opt.get("saturate_better", 0)
    if better < opt_min_better:
        fail(f"{opt_path}: saturate strictly better on only {better} cells "
             f"< floor {opt_min_better}")
    else:
        print(f"{opt_path}: saturate strictly better on {better} cells "
              f">= {opt_min_better} ok")
    if not opt.get("equivalence_ok", False):
        fail(f"{opt_path}: equivalence_ok is not true "
             f"({opt.get('equivalence_checked', 0)} cells checked)")
    else:
        print(f"{opt_path}: equivalence ok on all "
              f"{opt.get('equivalence_checked', 0)} divergent cells")
    tmin = opt.get("template_min_speedup")
    if tmin is None:
        fail(f"{opt_path}: template_min_speedup missing")
    elif tmin < template_min:
        fail(f"{opt_path}: template_min_speedup {tmin:.2f} < floor {template_min}")
    else:
        print(f"{opt_path}: template_min_speedup {tmin:.1f} >= {template_min} ok")

if obs_path:
    obs = json.load(open(obs_path))
    phases = obs.get("phases", {})
    on, off = phases.get("obs-on"), phases.get("obs-off")
    if on is None or off is None:
        fail(f"{obs_path}: needs both obs-on and obs-off phases "
             f"(have {sorted(phases)})")
    else:
        ratio = obs.get("tracing_on_vs_off_ratio")
        if ratio is None:
            fail(f"{obs_path}: tracing_on_vs_off_ratio missing")
        elif ratio < obs_min_ratio:
            fail(f"{obs_path}: tracing_on_vs_off_ratio {ratio:.3f} "
                 f"< floor {obs_min_ratio}")
        else:
            print(f"{obs_path}: tracing_on_vs_off_ratio {ratio:.3f} "
                  f">= {obs_min_ratio} ok ({on['throughput_rps']:.0f} rps on "
                  f"vs {off['throughput_rps']:.0f} rps off)")
        if on.get("traced_requests", 0) < 1 or not on.get("slowest_trace"):
            fail(f"{obs_path}: obs-on phase was not traced end to end "
                 f"(traced_requests={on.get('traced_requests', 0)}, "
                 f"slowest_trace={on.get('slowest_trace')!r})")
        else:
            print(f"{obs_path}: obs-on traced {on['traced_requests']} requests, "
                  f"slowest trace {on['slowest_trace']}")
        if off.get("traced_requests", 0) != 0:
            fail(f"{obs_path}: obs-off phase unexpectedly traced "
                 f"{off['traced_requests']} requests")

if stream_path and stream_path != "-":
    stream = json.load(open(stream_path))
    if not stream.get("equivalence_ok", False):
        fail(f"{stream_path}: equivalence_ok is not true — the streamed "
             f"output diverged from the monolithic golden arm")
    else:
        print(f"{stream_path}: streaming output equivalent to the "
              f"monolithic arm ok ({stream.get('equivalence_gates')} gates)")
    rss = stream.get("peak_rss_bytes")
    budget = stream.get("window_budget_bytes")
    if rss is None or budget is None:
        fail(f"{stream_path}: peak_rss_bytes / window_budget_bytes missing")
    elif rss > budget:
        fail(f"{stream_path}: peak_rss_bytes {rss} > window budget {budget} "
             f"({stream.get('large_gates')} gates, window "
             f"{stream.get('window')})")
    else:
        print(f"{stream_path}: peak RSS {rss / 2**20:.1f} MiB <= budget "
              f"{budget / 2**20:.0f} MiB ok ({stream.get('large_gates')} "
              f"gates through window {stream.get('window')}, "
              f"rss_ratio {stream.get('rss_ratio', 0):.2f} vs "
              f"{stream.get('small_gates')} gates)")
    cores = stream.get("num_cpu", 0)
    speedup = stream.get("pipeline_vs_serial_speedup")
    if cores < 2:
        print(f"{stream_path}: single-core host (num_cpu={cores}); "
              f"pipeline floor skipped, "
              f"pipeline_vs_serial_speedup={speedup}")
    elif speedup is None:
        fail(f"{stream_path}: pipeline_vs_serial_speedup missing on a "
             f"{cores}-core host")
    elif speedup < stream_min:
        fail(f"{stream_path}: pipeline_vs_serial_speedup {speedup:.2f} "
             f"< floor {stream_min}")
    else:
        print(f"{stream_path}: pipeline_vs_serial_speedup {speedup:.2f} "
              f">= {stream_min} ok ({cores} cores)")

sys.exit(1 if failed else 0)
PY
