#!/bin/sh
# Floor assertions for the simulation and kernel benchmark artifacts.
#
# PR 3's parallel engine shipped with CI that only checked parallel_speedup
# was *present*, and a 0.79x regression sailed through. This script makes the
# numbers load-bearing:
#
#   BENCH_sim.json     parallel_speedup >= SIM_MIN_SPEEDUP    (default 1.2)
#   BENCH_kernels.json route_stochastic_speedup,
#                      route_lookahead_speedup,
#                      dense_sweep_speedup >= KERNEL_MIN_SPEEDUP (default 1.2)
#                      and identical == true
#
# The parallel floor only applies on multi-core hosts: on a single-core
# machine goroutines cannot run concurrently, so the speedup is ~1.0 by
# physics, not by regression (the JSON records num_cpu so the skip is
# auditable). Override the floors via the environment, e.g.
# SIM_MIN_SPEEDUP=1.8 for a beefy dedicated runner.
set -eu

SIM_MIN_SPEEDUP="${SIM_MIN_SPEEDUP:-1.2}"
KERNEL_MIN_SPEEDUP="${KERNEL_MIN_SPEEDUP:-1.2}"
SIM_JSON="${1:-BENCH_sim.json}"
KERNEL_JSON="${2:-BENCH_kernels.json}"

python3 - "$SIM_JSON" "$KERNEL_JSON" "$SIM_MIN_SPEEDUP" "$KERNEL_MIN_SPEEDUP" <<'PY'
import json
import sys

sim_path, kernel_path, sim_min, kernel_min = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), float(sys.argv[4]))
failed = False


def fail(msg):
    global failed
    failed = True
    print(f"FLOOR FAIL: {msg}")


sim = json.load(open(sim_path))
cores = sim.get("num_cpu", 0)
speedup = sim.get("parallel_speedup")
if cores < 2:
    print(f"{sim_path}: single-core host (num_cpu={cores}); "
          f"parallel floor skipped, parallel_speedup={speedup}")
elif speedup is None:
    fail(f"{sim_path}: parallel_speedup missing on a {cores}-core host")
elif speedup < sim_min:
    fail(f"{sim_path}: parallel_speedup {speedup:.2f} < floor {sim_min}")
else:
    print(f"{sim_path}: parallel_speedup {speedup:.2f} >= {sim_min} ok "
          f"({sim.get('effective_workers')} workers, {cores} cores)")

kern = json.load(open(kernel_path))
if not kern.get("identical", False):
    fail(f"{kernel_path}: a new arm diverged from its legacy arm")
for key in ("route_stochastic_speedup", "route_lookahead_speedup",
            "dense_sweep_speedup"):
    v = kern.get(key)
    if v is None:
        fail(f"{kernel_path}: {key} missing")
    elif v < kernel_min:
        fail(f"{kernel_path}: {key} {v:.2f} < floor {kernel_min}")
    else:
        print(f"{kernel_path}: {key} {v:.2f} >= {kernel_min} ok")

sys.exit(1 if failed else 0)
PY
