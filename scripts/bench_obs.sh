#!/bin/sh
# bench_obs.sh — measure the cost of tracing: serve the same triosd twice
# (once with -trace=false, once with tracing on), drive the identical
# closed-loop mix against each, and merge the two runs into BENCH_obs.json as
# phases "obs-off" and "obs-on". The on-phase run also fetches /debug/traces
# and fails unless a non-empty slowest trace was retained, then asserts
# tracing_on_vs_off_ratio >= OBS_MIN_RATIO (default 0.95: tracing may cost at
# most 5% of throughput). Used by `make bench-obs` and the CI serving-smoke
# job.
#
# Environment knobs:
#   GO                  go binary (default: go)
#   TRIOSD_ADDR         listen address (default: 127.0.0.1:8423)
#   TRIOSD_RACE         set to "-race" to race-instrument the daemon
#   OBS_DURATION        load duration per phase (default: 5s)
#   OBS_WARMUP          unmeasured warmup per phase (default: 2s)
#   OBS_CONCURRENCY     closed-loop workers (default: 8)
#   OBS_MIN_RATIO       throughput-retention floor (default: 0.95)
#   OBS_OUT             report path (default: BENCH_obs.json)
set -eu

# Parallelism floor: mirror the Makefile's `GOMAXPROCS ?= 4` and export it,
# so a standalone run measures the same serving parallelism as
# `make bench-obs`. Callers can still override.
GOMAXPROCS=${GOMAXPROCS:-4}
export GOMAXPROCS

GO=${GO:-go}
ADDR=${TRIOSD_ADDR:-127.0.0.1:8423}
DUR=${OBS_DURATION:-5s}
WARMUP=${OBS_WARMUP:-2s}
CONC=${OBS_CONCURRENCY:-8}
RATIO=${OBS_MIN_RATIO:-0.95}
OUT=${OBS_OUT:-BENCH_obs.json}
RACE=${TRIOSD_RACE:-}

bindir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$bindir"
}
trap cleanup EXIT INT TERM

# shellcheck disable=SC2086 # RACE is intentionally word-split ("-race" or empty)
$GO build $RACE -o "$bindir/triosd" ./cmd/triosd
$GO build -o "$bindir/loadgen" ./cmd/loadgen

# A stale report would let phase throughputs from different commits be
# compared against each other.
rm -f "$OUT"

wait_healthy() {
    i=0
    while [ $i -lt 50 ]; do
        if "$bindir/loadgen" -addr "http://$ADDR" -ping 2>/dev/null; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.2
    done
    echo "bench_obs: triosd did not become healthy on $ADDR" >&2
    exit 1
}

stop_daemon() {
    kill -TERM "$pid"
    wait "$pid"
    pid=""
}

# Phase 1: tracing off — the throughput baseline.
"$bindir/triosd" -addr "$ADDR" -trace=false &
pid=$!
wait_healthy
"$bindir/loadgen" -addr "http://$ADDR" -duration "$WARMUP" -concurrency "$CONC" -out ""
"$bindir/loadgen" -addr "http://$ADDR" -duration "$DUR" -concurrency "$CONC" \
    -phase obs-off -out "$OUT"
stop_daemon

# Phase 2: tracing on (the default) — same mix, same daemon config otherwise.
# -check-traces asserts the ring retained a slowest trace, -min-tracing-ratio
# asserts the throughput cost against the obs-off phase just written.
"$bindir/triosd" -addr "$ADDR" &
pid=$!
wait_healthy
"$bindir/loadgen" -addr "http://$ADDR" -duration "$WARMUP" -concurrency "$CONC" -out ""
"$bindir/loadgen" -addr "http://$ADDR" -duration "$DUR" -concurrency "$CONC" \
    -phase obs-on -out "$OUT" -check-traces -min-tracing-ratio "$RATIO"
stop_daemon

echo "bench_obs: wrote $OUT"
