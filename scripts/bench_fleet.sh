#!/bin/sh
# bench_fleet.sh — build triosd + triosfleet + loadgen, stand up a 3-replica
# fleet (each replica with its own persistent artifact store) behind the
# consistent-hash proxy, and measure four phases into BENCH_fleet.json:
#
#   single    proxy over 1 replica — the scaling baseline (same harness)
#   fleet     proxy over 3 replicas
#   degraded  one replica SIGKILLed mid-run; the fleet must keep serving
#   warm      all replicas restarted against their stores; >=90% hit rate
#             with disk-tier hits observed, and fleet/single throughput
#             speedup asserted
#
# Each replica is pinned to GOMAXPROCS=1 so fleet scaling is visible even on
# small CI runners; the proxy and loadgen inherit the caller's GOMAXPROCS.
#
# Environment knobs:
#   GO                        go binary (default: go)
#   TRIOSD_RACE               set to "-race" to race-instrument daemons
#   FLEET_DURATION            load duration per phase (default: 5s)
#   FLEET_CONCURRENCY         closed-loop workers (default: 16)
#   FLEET_OUT                 report path (default: BENCH_fleet.json)
#   FLEET_MIN_SPEEDUP         fleet-vs-single throughput floor (default: 1.5)
#   FLEET_MIN_WARM_HIT_RATE   warm-restart hit-rate floor (default: 0.9)
#   FLEET_REPLICA_GOMAXPROCS  per-replica GOMAXPROCS (default: 1)
#   FLEET_HOLD                set to 1 to just run the fleet until ctrl-c
#                             (for `make fleet`; no benchmark phases)
set -eu

# Parallelism floor: mirror the Makefile's `GOMAXPROCS ?= 4` and export it,
# so the proxy and loadgen see the same parallelism under a standalone run
# as under `make bench-fleet`. Replicas are still pinned separately: each
# start_replica sets GOMAXPROCS=$REPLICA_GOMAXPROCS explicitly, which
# overrides this export for the daemons only.
GOMAXPROCS=${GOMAXPROCS:-4}
export GOMAXPROCS

GO=${GO:-go}
RACE=${TRIOSD_RACE:-}
DUR=${FLEET_DURATION:-5s}
CONC=${FLEET_CONCURRENCY:-16}
OUT=${FLEET_OUT:-BENCH_fleet.json}
MIN_SPEEDUP=${FLEET_MIN_SPEEDUP:-1.5}
MIN_WARM_HIT_RATE=${FLEET_MIN_WARM_HIT_RATE:-0.9}
REPLICA_GOMAXPROCS=${FLEET_REPLICA_GOMAXPROCS:-1}
HOLD=${FLEET_HOLD:-}

HOST=127.0.0.1
PROXY_ADDR=$HOST:8420
SINGLE_ADDR=$HOST:8424
R1_ADDR=$HOST:8431
R2_ADDR=$HOST:8432
R3_ADDR=$HOST:8433

# The benchmark mix: cheap-to-compile circuits crossed with all three
# pipelines and three seeds, giving 54 distinct cache keys. Key count is
# what makes consistent-hash sharding fair — with only ~10 keys the busiest
# replica can own half the traffic and cap fleet speedup at ~2x by
# quantization alone, which would measure the hash ring's granularity, not
# the fleet. Every loadgen invocation (warm-up and measured) uses the same
# mix so the key set, and therefore each replica's shard, is stable.
MIX=${FLEET_MIX:-cnx_inplace-4,incrementer_borrowedbit-5,grovers-9,qaoa_complete-10,cnx_dirty-11,bv-20}
PIPES=${FLEET_PIPELINES:-baseline,trios,groups}
SEEDS=${FLEET_SEEDS:-1,2,3}
KEYS=$(($(echo "$MIX" | tr ',' '\n' | grep -c .) * $(echo "$PIPES" | tr ',' '\n' | grep -c .) * $(echo "$SEEDS" | tr ',' '\n' | grep -c .)))
VNODES=${FLEET_VNODES:-512}

# drive <addr> <extra...>: one loadgen invocation against addr with the
# shared mix.
drive() {
    d_addr=$1
    shift
    "$bin/loadgen" -addr "$d_addr" -mix "$MIX" -pipelines "$PIPES" -seeds "$SEEDS" \
        -concurrency "$CONC" "$@"
}

workdir=$(mktemp -d)
bin=$workdir/bin
r1_pid="" r2_pid="" r3_pid="" proxy_pid="" single_pid=""
cleanup() {
    for p in $r1_pid $r2_pid $r3_pid $proxy_pid $single_pid; do
        kill "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

mkdir -p "$bin"
# shellcheck disable=SC2086 # RACE is intentionally word-split ("-race" or empty)
$GO build $RACE -o "$bin/triosd" ./cmd/triosd
# shellcheck disable=SC2086
$GO build $RACE -o "$bin/triosfleet" ./cmd/triosfleet
$GO build -o "$bin/loadgen" ./cmd/loadgen

# start_replica <n> <addr>: boot replica n against its persistent store dir,
# pinned to REPLICA_GOMAXPROCS cores. The caller reads the pid from $! — the
# job must be launched from this shell (not a command-substitution subshell)
# so that `wait` can later observe its graceful exit.
start_replica() {
    GOMAXPROCS=$REPLICA_GOMAXPROCS "$bin/triosd" -addr "$2" \
        -store-dir "$workdir/store-$1" -grace 10s >>"$workdir/replica-$1.log" 2>&1 &
}

# wait_up <base-url> <what>: poll /healthz until it answers 200.
wait_up() {
    i=0
    while [ "$i" -lt 100 ]; do
        if "$bin/loadgen" -addr "$1" -ping 2>/dev/null; then
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "bench_fleet: $2 did not become healthy at $1" >&2
    exit 1
}

start_replica 1 "$R1_ADDR"
r1_pid=$!
start_replica 2 "$R2_ADDR"
r2_pid=$!
start_replica 3 "$R3_ADDR"
r3_pid=$!
wait_up "http://$R1_ADDR" "replica 1"
wait_up "http://$R2_ADDR" "replica 2"
wait_up "http://$R3_ADDR" "replica 3"

"$bin/triosfleet" -addr "$PROXY_ADDR" -health-interval 200ms -vnodes "$VNODES" \
    -replicas "http://$R1_ADDR,http://$R2_ADDR,http://$R3_ADDR" >>"$workdir/proxy.log" 2>&1 &
proxy_pid=$!
wait_up "http://$PROXY_ADDR" "fleet proxy"

if [ -n "$HOLD" ]; then
    echo "bench_fleet: fleet up — proxy http://$PROXY_ADDR, replicas http://$R1_ADDR http://$R2_ADDR http://$R3_ADDR (ctrl-c to stop)"
    wait "$proxy_pid"
    exit 0
fi

rm -f "$OUT"

# Warm-up: compile every key once through each routing topology, so the
# measured phases compare hit-serving capacity instead of cold-compile
# scheduling. One round against the fleet proxy populates each replica's
# shard; one round against the single-replica proxy populates replica 1
# with the full key set (it serves everything in the baseline phase).
"$bin/triosfleet" -addr "$SINGLE_ADDR" -health-interval 200ms -vnodes "$VNODES" \
    -replicas "http://$R1_ADDR" >>"$workdir/single.log" 2>&1 &
single_pid=$!
wait_up "http://$SINGLE_ADDR" "single-replica proxy"
echo "bench_fleet: warm-up ($KEYS keys x 2 topologies)"
drive "http://$PROXY_ADDR" -requests "$KEYS" -duration 300s -out ""
drive "http://$SINGLE_ADDR" -requests "$KEYS" -duration 300s -out ""

# Phase 1 — single: the same proxy harness over exactly one replica, so the
# fleet comparison varies only the replica count.
echo "bench_fleet: phase single (1 replica)"
drive "http://$SINGLE_ADDR" -duration "$DUR" -phase single -out "$OUT"
kill "$single_pid" && wait "$single_pid"
single_pid=""

# Phase 2 — fleet: all three replicas behind the proxy.
echo "bench_fleet: phase fleet (3 replicas)"
drive "http://$PROXY_ADDR" -duration "$DUR" -phase fleet -out "$OUT"

# Phase 3 — degraded: SIGKILL replica 3 mid-run. The proxy must absorb the
# loss (mark it down, retry along the ring) with the loadgen error budget
# intact — loadgen exiting 0 IS the assertion.
echo "bench_fleet: phase degraded (killing replica 3 mid-run)"
drive "http://$PROXY_ADDR" -duration "$DUR" -phase degraded -out "$OUT" &
lg_pid=$!
sleep 1
kill -9 "$r3_pid" 2>/dev/null || true
wait "$r3_pid" || true
r3_pid=""
if ! wait "$lg_pid"; then
    echo "bench_fleet: fleet stopped serving when a replica was killed" >&2
    exit 1
fi

# Phase 4 — warm restart: drain the survivors gracefully (flushing their
# write-behind queues), restart all three against the same store dirs, and
# replay the mix. The fleet must serve it from the store tier: >=90% hit
# rate with disk hits observed, bodies byte-identical (asserted by the
# cmd/triosd restart-warm test in `make test`).
echo "bench_fleet: phase warm (restarting all replicas against their stores)"
kill -TERM "$r1_pid" && wait "$r1_pid"
kill -TERM "$r2_pid" && wait "$r2_pid"
start_replica 1 "$R1_ADDR"
r1_pid=$!
start_replica 2 "$R2_ADDR"
r2_pid=$!
start_replica 3 "$R3_ADDR"
r3_pid=$!
wait_up "http://$R1_ADDR" "replica 1 (restarted)"
wait_up "http://$R2_ADDR" "replica 2 (restarted)"
wait_up "http://$R3_ADDR" "replica 3 (restarted)"
sleep 1 # let the proxy's health poll promote the restarted replicas

drive "http://$PROXY_ADDR" -duration "$DUR" -phase warm -out "$OUT" \
    -min-hit-rate "$MIN_WARM_HIT_RATE" -min-disk-hits 1 -min-speedup "$MIN_SPEEDUP"

# Graceful fleet shutdown must complete on its own.
kill -TERM "$proxy_pid" && wait "$proxy_pid"
proxy_pid=""
kill -TERM "$r1_pid" && wait "$r1_pid"
kill -TERM "$r2_pid" && wait "$r2_pid"
kill -TERM "$r3_pid" && wait "$r3_pid"
r1_pid="" r2_pid="" r3_pid=""
echo "bench_fleet: wrote $OUT"
