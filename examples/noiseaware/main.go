// Noiseaware: the paper's §4 noise-aware routing extension in action.
// Three couplers in the middle of Johannesburg are badly degraded (the
// shape IBM's daily calibration data takes); weighting routing edges by
// -log CNOT success makes Dijkstra detour around them, trading a couple of
// extra SWAPs for a much better chance the program succeeds.
package main

import (
	"fmt"
	"log"

	"trios/internal/circuit"
	"trios/internal/compiler"
	"trios/internal/noise"
	"trios/internal/topo"
)

func main() {
	device := topo.Johannesburg()
	hot := [][2]int{{7, 12}, {5, 10}, {6, 7}}
	calib := noise.UniformEdgeMap(device, 0.005)
	for _, e := range hot {
		calib.SetError(e[0], e[1], 0.35)
	}
	fmt.Printf("calibration on %s: 3 hot couplers at error 0.35, rest at 0.005\n\n", device.Name())

	// A Toffoli whose operands straddle the hot region, so every short
	// route is tempted to cross it (compare the paper's Fig. 1 setup).
	program := circuit.New(3)
	program.CCX(0, 1, 2)
	placement := []int{2, 11, 15}

	model := noise.Johannesburg0819()
	model.ReadoutError = 0

	fmt.Printf("%-24s %10s %10s %14s %12s\n", "configuration", "swaps", "2q gates", "hot-edge uses", "est. success")
	for _, cfg := range []struct {
		label  string
		weight func(a, b int) float64
	}{
		{"trios, noise-blind", nil},
		{"trios, noise-aware", calib.RouteWeight()},
	} {
		res, err := compiler.Compile(program, device, compiler.Options{
			Pipeline:      compiler.TriosPipeline,
			InitialLayout: placement,
			NoiseWeight:   cfg.weight,
			Seed:          8,
		})
		if err != nil {
			log.Fatal(err)
		}
		hotUses := 0
		for _, g := range res.Physical.Gates {
			if g.Name != circuit.CX {
				continue
			}
			for _, e := range hot {
				a, b := g.Qubits[0], g.Qubits[1]
				if (a == e[0] && b == e[1]) || (a == e[1] && b == e[0]) {
					hotUses++
				}
			}
		}
		p, err := noise.SuccessProbabilityEdges(res.Physical, model, calib)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %10d %10d %14d %12.3f\n",
			cfg.label, res.SwapsAdded, res.TwoQubitGates(), hotUses, p)
	}
}
