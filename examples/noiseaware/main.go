// Noiseaware: the paper's §4 noise-aware extension through the unified
// device model. Three couplers in the middle of Johannesburg are badly
// degraded (the shape IBM's daily calibration data takes); under the Noise
// cost model, routing weighs edges by -log CNOT success and detours around
// them, trading a couple of extra SWAPs for a much better chance the
// program succeeds. The Uniform cost model is the control arm: it compiles
// exactly like a calibration-less run but still reports the calibrated
// fidelity estimate.
package main

import (
	"fmt"
	"log"

	"trios/internal/circuit"
	"trios/internal/compiler"
	"trios/internal/device"
	"trios/internal/topo"
)

func main() {
	dev := topo.Johannesburg()
	hot := [][2]int{{7, 12}, {5, 10}, {6, 7}}
	calib := device.JohannesburgFlat().Clone()
	calib.Name = "johannesburg-hot"
	for _, e := range hot {
		calib.SetEdgeError(e[0], e[1], 0.35)
	}
	// The paper's forward-looking coherence (§5.2): with 20x T1/T2 the
	// estimate is gate-error-limited, so the trade "a few more SWAPs for
	// zero hot-coupler uses" is visible in the success column instead of
	// being drowned by idle decoherence.
	for q := range calib.T1 {
		calib.T1[q] *= 20
		calib.T2[q] *= 20
	}
	fmt.Printf("calibration %s on %s: 3 hot couplers at error 0.35, rest at the device average\n\n",
		calib.Name, dev.Name())

	// A Toffoli whose operands straddle the hot region, so every short
	// route is tempted to cross it (compare the paper's Fig. 1 setup).
	program := circuit.New(3)
	program.CCX(0, 1, 2)
	placement := []int{2, 11, 15}

	fmt.Printf("%-24s %10s %10s %14s %12s\n", "cost model", "swaps", "2q gates", "hot-edge uses", "est. success")
	for _, cfg := range []struct {
		label string
		model device.CostModel
	}{
		{"uniform (noise-blind)", device.Uniform{}},
		{"noise (calibrated)", nil}, // nil: Options derives the Noise model from the calibration
	} {
		res, err := compiler.Compile(program, dev, compiler.Options{
			Pipeline:      compiler.TriosPipeline,
			InitialLayout: placement,
			Calibration:   calib,
			CostModel:     cfg.model,
			Seed:          8,
		})
		if err != nil {
			log.Fatal(err)
		}
		hotUses := 0
		for _, g := range res.Physical.Gates {
			if g.Name != circuit.CX {
				continue
			}
			for _, e := range hot {
				a, b := g.Qubits[0], g.Qubits[1]
				if (a == e[0] && b == e[1]) || (a == e[1] && b == e[0]) {
					hotUses++
				}
			}
		}
		fmt.Printf("%-24s %10d %10d %14d %12.3f\n",
			cfg.label, res.SwapsAdded, res.TwoQubitGates(), hotUses, res.EstimatedSuccess)
	}
}
