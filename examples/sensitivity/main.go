// Sensitivity: sweep device error rates from today's Johannesburg
// calibration to a 100x improvement and watch the Trios advantage decay
// exponentially — the paper's Figure 12 for a single benchmark, plus the
// crossover landscape across topologies.
package main

import (
	"fmt"
	"log"

	"trios/internal/benchmarks"
	"trios/internal/compiler"
	"trios/internal/noise"
	"trios/internal/topo"
)

func main() {
	bench, err := benchmarks.ByName("cnx_logancilla-19")
	if err != nil {
		log.Fatal(err)
	}
	c, err := bench.Build()
	if err != nil {
		log.Fatal(err)
	}

	base := noise.Johannesburg0819()
	base.ReadoutError = 0
	base.Coherence = noise.CoherencePerQubit

	fmt.Printf("%s: success ratio p_trios/p_baseline vs error improvement\n\n", bench.Name)
	fmt.Printf("%8s", "factor")
	for _, device := range topo.PaperTopologies() {
		fmt.Printf(" %18s", device.Name())
	}
	fmt.Println()

	factors := []float64{1, 2, 5, 10, 20, 50, 100}
	type pair struct{ b, t *compiler.Result }
	compiled := map[string]pair{}
	for _, device := range topo.PaperTopologies() {
		b, err := compiler.Compile(c, device, compiler.Options{
			Pipeline: compiler.Conventional, Router: compiler.RouteStochastic, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		t, err := compiler.Compile(c, device, compiler.Options{
			Pipeline: compiler.TriosPipeline, Router: compiler.RouteStochastic, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		compiled[device.Name()] = pair{b, t}
	}

	for _, f := range factors {
		model := base.Improved(f)
		fmt.Printf("%7.0fx", f)
		for _, device := range topo.PaperTopologies() {
			p := compiled[device.Name()]
			pb, err := noise.SuccessProbability(p.b.Physical, model)
			if err != nil {
				log.Fatal(err)
			}
			pt, err := noise.SuccessProbability(p.t.Physical, model)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %18.3g", pt/pb)
		}
		fmt.Println()
	}
	fmt.Println("\nRatios fall exponentially as errors improve; Trios never drops below 1x.")
}
