// Grover: compile the paper's grovers-9 benchmark (84 Toffolis) with both
// pipelines, simulate the compiled circuit end to end to confirm the search
// still finds the marked state, and estimate success under near-future
// noise — an end-to-end walk through the full toolchain.
package main

import (
	"fmt"
	"log"

	"trios/internal/benchmarks"
	"trios/internal/compiler"
	"trios/internal/experiments"
	"trios/internal/noise"
	"trios/internal/sim"
	"trios/internal/topo"
)

func main() {
	grover, err := benchmarks.Grover(6)
	if err != nil {
		log.Fatal(err)
	}
	device := topo.Johannesburg()
	model := experiments.DefaultModel()

	fmt.Printf("grovers-9: %d qubits, %d gates before compilation\n",
		grover.NumQubits, len(grover.Gates))

	var trios *compiler.Result
	for _, pipe := range []compiler.Pipeline{compiler.Conventional, compiler.TriosPipeline} {
		res, err := compiler.Compile(grover, device, compiler.Options{
			Pipeline:  pipe,
			Placement: compiler.PlaceGreedy,
			Seed:      3,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			log.Fatal(err)
		}
		p, err := noise.SuccessProbability(res.Physical, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s: %4d two-qubit gates, %3d swaps, success estimate %.4g\n",
			pipe, res.TwoQubitGates(), res.SwapsAdded, p)
		if pipe == compiler.TriosPipeline {
			trios = res
		}
	}

	// Noiseless end-to-end simulation of the compiled circuit: the marked
	// state |111111> must dominate the data qubits at their final physical
	// positions.
	state := sim.NewState(device.NumQubits())
	if err := state.ApplyCircuit(trios.Physical); err != nil {
		log.Fatal(err)
	}
	var marked uint64
	for v := 0; v < 6; v++ { // data qubits are logical wires 0..5
		marked |= 1 << uint(trios.Final[v])
	}
	fmt.Printf("\ncompiled-circuit simulation: P(marked state) = %.4f (ideal 0.997)\n",
		state.Probability(marked))
	if state.Probability(marked) < 0.9 {
		log.Fatal("compiled Grover lost the marked state")
	}
}
