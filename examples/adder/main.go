// Adder: compile the Cuccaro ripple-carry adder (18 Toffolis, 20 qubits)
// for all four device topologies the paper studies, verify the compiled
// circuit still adds correctly, and compare pipelines — the per-benchmark
// view behind Figures 9 and 10.
package main

import (
	"fmt"
	"log"

	"trios/internal/benchmarks"
	"trios/internal/circuit"
	"trios/internal/compiler"
	"trios/internal/experiments"
	"trios/internal/noise"
	"trios/internal/sim"
	"trios/internal/topo"
)

func main() {
	adder, err := benchmarks.CuccaroAdder(9)
	if err != nil {
		log.Fatal(err)
	}
	model := experiments.DefaultModel()

	fmt.Println("cuccaro_adder-20 across topologies (baseline vs Trios):")
	fmt.Printf("%-22s %10s %10s %10s %12s %12s\n",
		"topology", "base 2q", "trios 2q", "reduction", "base succ", "trios succ")
	for _, device := range topo.PaperTopologies() {
		base := mustCompile(adder, device, compiler.Conventional)
		trios := mustCompile(adder, device, compiler.TriosPipeline)

		bp := mustSuccess(base, model)
		tp := mustSuccess(trios, model)
		b2, t2 := base.TwoQubitGates(), trios.TwoQubitGates()
		fmt.Printf("%-22s %10d %10d %9.1f%% %12.4g %12.4g\n",
			device.Name(), b2, t2, 100*float64(b2-t2)/float64(b2), bp, tp)
	}

	// End-to-end semantic check on one topology: feed 137 + 201 through the
	// compiled circuit and read the sum off the final qubit placement.
	device := topo.Johannesburg()
	res := mustCompile(adder, device, compiler.TriosPipeline)
	a, b := uint64(137), uint64(201)
	logical := a<<1 | b<<10 // wires: cin, a[0..8], b[0..8], cout

	var physIn uint64
	for v := 0; v < adder.NumQubits; v++ {
		if logical&(1<<uint(v)) != 0 {
			physIn |= 1 << uint(res.Initial[v])
		}
	}
	physOut, err := sim.ClassicalOutput(res.Physical, physIn)
	if err != nil {
		log.Fatal(err)
	}
	var sum uint64
	for i := 0; i < 9; i++ {
		if physOut&(1<<uint(res.Final[1+9+i])) != 0 {
			sum |= 1 << uint(i)
		}
	}
	fmt.Printf("\ncompiled adder check on %s: %d + %d = %d\n", device.Name(), a, b, sum)
	if sum != a+b {
		log.Fatalf("wrong sum: got %d", sum)
	}
}

func mustCompile(c *circuit.Circuit, device *topo.Graph, pipe compiler.Pipeline) *compiler.Result {
	res, err := compiler.Compile(c, device, compiler.Options{
		Pipeline:  pipe,
		Placement: compiler.PlaceGreedy,
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	return res
}

func mustSuccess(res *compiler.Result, model noise.Params) float64 {
	p, err := noise.SuccessProbability(res.Physical, model)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
