// Quickstart: compile one Toffoli gate for IBM Johannesburg with the
// conventional pipeline and with Orchestrated Trios, and compare the
// compiled cost — the paper's Figure 1 in a dozen lines.
package main

import (
	"fmt"
	"log"

	"trios/internal/circuit"
	"trios/internal/compiler"
	"trios/internal/qasm"
	"trios/internal/topo"
)

func main() {
	// A single Toffoli whose three operands start far apart on the device.
	program := circuit.New(3)
	program.CCX(0, 1, 2)

	device := topo.Johannesburg()
	placement := []int{6, 17, 3} // the paper's distance-10 example

	for _, pipe := range []compiler.Pipeline{compiler.Conventional, compiler.TriosPipeline} {
		res, err := compiler.Compile(program, device, compiler.Options{
			Pipeline:      pipe,
			InitialLayout: placement,
			Seed:          7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s: %2d SWAPs inserted, %2d two-qubit gates, depth %d\n",
			pipe, res.SwapsAdded, res.TwoQubitGates(), res.Physical.Depth())
	}

	// The compiled program is plain OpenQASM 2.0.
	res, err := compiler.Compile(program, device, compiler.Options{
		Pipeline:      compiler.TriosPipeline,
		InitialLayout: placement,
	})
	if err != nil {
		log.Fatal(err)
	}
	src, err := qasm.Emit(res.Physical)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCompiled Trios circuit (OpenQASM 2.0):")
	fmt.Print(src)
}
