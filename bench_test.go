// Benchmarks regenerating each table and figure of the paper's evaluation.
// Each benchmark reports the headline metric of its artifact via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a results
// summary (EXPERIMENTS.md records the paper-vs-measured comparison).
package trios_test

import (
	"testing"

	"trios/internal/benchmarks"
	"trios/internal/circuit"
	"trios/internal/compiler"
	"trios/internal/experiments"
	"trios/internal/noise"
	"trios/internal/topo"
)

const benchSeed = 2021

// skipInShort guards the simulation-heavy figure benchmarks so the CI
// bench smoke step (`go test -short -bench . -benchtime 1x`) exercises the
// compile-path benchmarks without paying for noisy-sim shot sampling.
func skipInShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping simulation-heavy benchmark in -short mode")
	}
}

// BenchmarkTable1 regenerates the benchmark inventory: generating all
// eleven workloads and tabulating their Table-1 counts.
func BenchmarkTable1(b *testing.B) {
	var toffolis, cnots int
	for i := 0; i < b.N; i++ {
		toffolis, cnots = 0, 0
		for _, bench := range benchmarks.All() {
			m, err := bench.Measure()
			if err != nil {
				b.Fatal(err)
			}
			toffolis += m.Toffolis
			cnots += m.CNOTs
		}
	}
	b.ReportMetric(float64(toffolis), "toffolis-total")
	b.ReportMetric(float64(cnots), "cnots-total")
}

// BenchmarkFig1 compiles the motivating single-Toffoli example (distance-10
// trio on Johannesburg) with both pipelines and reports SWAP counts.
func BenchmarkFig1(b *testing.B) {
	g := topo.Johannesburg()
	src := circuit.New(3)
	src.CCX(0, 1, 2)
	init := []int{6, 17, 3}
	var baseSwaps, triosSwaps int
	for i := 0; i < b.N; i++ {
		base, err := compiler.Compile(src, g, compiler.Options{
			Pipeline: compiler.Conventional, InitialLayout: init, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		trios, err := compiler.Compile(src, g, compiler.Options{
			Pipeline: compiler.TriosPipeline, InitialLayout: init, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		baseSwaps, triosSwaps = base.SwapsAdded, trios.SwapsAdded
	}
	b.ReportMetric(float64(baseSwaps), "baseline-swaps")
	b.ReportMetric(float64(triosSwaps), "trios-swaps") // paper: 7
}

// toffoliExperiment runs the Fig. 6/7 experiment once.
func toffoliExperiment(b *testing.B, triplets int) []experiments.TripletResult {
	b.Helper()
	g := topo.Johannesburg()
	trips := experiments.RandomTriplets(g, triplets, benchSeed)
	model := noise.Johannesburg0819()
	rs, err := experiments.ToffoliExperiment(g, trips, model, 256, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return rs
}

// BenchmarkFig6 regenerates the Toffoli success-rate experiment: 35 random
// triplets x 4 compiler configurations under Johannesburg noise.
// Reports the geomean success of the baseline and Trios(8-CNOT) columns
// (paper: 41% -> 50%, a 23% improvement).
func BenchmarkFig6(b *testing.B) {
	skipInShort(b)
	var rs []experiments.TripletResult
	for i := 0; i < b.N; i++ {
		rs = toffoliExperiment(b, 35)
	}
	b.ReportMetric(experiments.GeoMeanColumn(rs, experiments.SuccessAsFloats, 0), "baseline-success")
	b.ReportMetric(experiments.GeoMeanColumn(rs, experiments.SuccessAsFloats, 3), "trios8-success")
}

// BenchmarkFig7 regenerates the Toffoli gate-count experiment and reports
// geomean compiled CNOTs (paper: 29 baseline -> 19 Trios, a 35% reduction).
func BenchmarkFig7(b *testing.B) {
	skipInShort(b)
	var rs []experiments.TripletResult
	for i := 0; i < b.N; i++ {
		rs = toffoliExperiment(b, 35)
	}
	b.ReportMetric(experiments.GeoMeanColumn(rs, experiments.CNOTsAsFloats, 0), "baseline-cnots")
	b.ReportMetric(experiments.GeoMeanColumn(rs, experiments.CNOTsAsFloats, 3), "trios8-cnots")
}

// BenchmarkFig8 regenerates the 99-triplet normalized-success experiment and
// reports the geomean Trios/baseline ratio (paper: 1.23x).
func BenchmarkFig8(b *testing.B) {
	skipInShort(b)
	var rs []experiments.TripletResult
	for i := 0; i < b.N; i++ {
		rs = toffoliExperiment(b, 99)
	}
	ratios := make([]float64, 0, len(rs))
	for _, r := range rs {
		if r.Success[0] > 0 {
			ratios = append(ratios, r.Success[3]/r.Success[0])
		}
	}
	b.ReportMetric(experiments.GeoMean(ratios), "success-ratio")
}

// benchmarkSweep runs the Figs. 9-11 sweep once.
func benchmarkSweep(b *testing.B) []experiments.BenchResult {
	b.Helper()
	rs, err := experiments.BenchmarkSweep(experiments.DefaultModel(), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return rs
}

// BenchmarkFig9 regenerates the benchmark success sweep (11 benchmarks x
// 4 topologies x 2 pipelines) and reports the Johannesburg geomean success
// pair (paper: 2.2% -> 9.8%).
func BenchmarkFig9(b *testing.B) {
	skipInShort(b)
	var rs []experiments.BenchResult
	for i := 0; i < b.N; i++ {
		rs = benchmarkSweep(b)
	}
	base := experiments.GeoMeansByTopology(rs, func(r experiments.BenchResult) float64 { return r.BaselineSuccess })
	trios := experiments.GeoMeansByTopology(rs, func(r experiments.BenchResult) float64 { return r.TriosSuccess })
	b.ReportMetric(base["ibmq-johannesburg"], "ibmq-baseline-success")
	b.ReportMetric(trios["ibmq-johannesburg"], "ibmq-trios-success")
}

// BenchmarkFig10 reports the geomean two-qubit gate-count reduction per
// topology (paper: ibmq 37%, grid 36%, line 48%, clusters 26%).
func BenchmarkFig10(b *testing.B) {
	skipInShort(b)
	var rs []experiments.BenchResult
	for i := 0; i < b.N; i++ {
		rs = benchmarkSweep(b)
	}
	ratios := experiments.GeoMeansByTopology(rs, func(r experiments.BenchResult) float64 {
		if r.BaselineCNOTs == 0 {
			return 0
		}
		return float64(r.TriosCNOTs) / float64(r.BaselineCNOTs)
	})
	b.ReportMetric(100*(1-ratios["ibmq-johannesburg"]), "ibmq-reduction-pct")
	b.ReportMetric(100*(1-ratios["line-20"]), "line-reduction-pct")
}

// BenchmarkFig11 reports the geomean success ratio per topology
// (paper: ibmq 4.4x, grid 3.7x, line 31x, clusters 2.3x).
func BenchmarkFig11(b *testing.B) {
	skipInShort(b)
	var rs []experiments.BenchResult
	for i := 0; i < b.N; i++ {
		rs = benchmarkSweep(b)
	}
	ratios := experiments.GeoMeansByTopology(rs, func(r experiments.BenchResult) float64 { return r.Ratio })
	b.ReportMetric(ratios["ibmq-johannesburg"], "ibmq-ratio")
	b.ReportMetric(ratios["line-20"], "line-ratio")
	b.ReportMetric(ratios["clusters-5x4"], "clusters-ratio")
}

// BenchmarkFig12 regenerates the error-rate sensitivity sweep and reports
// the ratio at current error rates and at the 20x setting for one deep
// benchmark (the paper's curves decay exponentially with improvement).
func BenchmarkFig12(b *testing.B) {
	skipInShort(b)
	base := noise.Johannesburg0819()
	base.ReadoutError = 0
	base.Coherence = noise.CoherencePerQubit
	factors := []float64{1, 20, 100}
	var points []experiments.SensitivityPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Sensitivity(base, factors, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Benchmark == "grovers-9" && p.Factor == 20 {
			b.ReportMetric(p.Ratio, "grover-ratio-at-20x")
		}
	}
}
